#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>

#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "obs/trace_span.h"
#include "prng/splitmix.h"
#include "sim/shard.h"

namespace hotspots::sim {

namespace {

/// Registry counter names for the delivery-verdict breakdown, indexed by
/// topology::Delivery.
constexpr const char* kDeliveryCounterNames[] = {
    "engine.delivery.delivered",          "engine.delivery.non_targetable",
    "engine.delivery.nat_unroutable",     "engine.delivery.ingress_filtered",
    "engine.delivery.perimeter_filtered", "engine.delivery.network_loss",
};
static_assert(std::size(kDeliveryCounterNames) ==
              std::tuple_size_v<decltype(RunResult::delivery_counts)>);

/// Domain separator between a scanner's targeting entropy and its probe
/// (loss-draw) stream, so the two never correlate.
constexpr std::uint64_t kProbeStreamSalt = 0x70b5'7e55'0b5e'55edULL;

/// Domain separator for a scanner's fault-draw stream (sharded fault
/// hooks).  Per-scanner — not per-(shard, step) — because the engine
/// adapts its shard split to step probe volume, so only a partition-
/// independent stream keeps faulted fingerprints shard-count-invariant.
/// The hook's run salt is mixed in too, so distinct schedules (and engine
/// seeds) draw distinct sequences while clean runs never touch this.
constexpr std::uint64_t kFaultStreamSalt = 0xfa17'5a17'ed5e'edf5ULL;

/// Below this many probes in a step, the shard fan-out costs more than it
/// saves; run fewer shards (down to one, inline on the stepping thread).
/// Results are identical either way: the commit order only depends on
/// scanner index, never on the shard partition.
constexpr std::uint64_t kMinProbesPerShard = 2048;

/// Interned span names for the engine's trace lanes, resolved once per
/// process (ids stay valid for the process lifetime).
struct EngineSpanIds {
  std::uint32_t step = obs::InternSpanName("engine.step");
  std::uint32_t lifecycle = obs::InternSpanName("engine.lifecycle");
  std::uint32_t generate = obs::InternSpanName("engine.generate");
  std::uint32_t prefold = obs::InternSpanName("engine.prefold");
  std::uint32_t commit = obs::InternSpanName("engine.commit");
  std::uint32_t run = obs::InternSpanName("engine.run");
};

const EngineSpanIds& SpanIds() {
  static const EngineSpanIds ids;
  return ids;
}

}  // namespace

void EngineAudit::CheckConservation(const RunResult& result) {
  if (ConservationHolds(result)) return;
  std::uint64_t verdicts = 0;
  for (const std::uint64_t count : result.delivery_counts) verdicts += count;
  throw std::logic_error(
      "EngineAudit: delivery-count conservation violated: Σdelivery_counts=" +
      std::to_string(verdicts) +
      " != total_probes=" + std::to_string(result.total_probes) +
      " + fault_duplicates=" + std::to_string(result.fault_duplicates));
}

Engine::Engine(Population& population, const Worm& worm,
               const topology::Reachability& reachability,
               const topology::NatDirectory* nats, EngineConfig config)
    : population_(population), worm_(worm), reachability_(reachability),
      nats_(nats), config_(config), rng_(config.seed) {
  if (config_.scan_rate <= 0.0) {
    throw std::invalid_argument("Engine: scan_rate must be positive");
  }
  if (config_.dt == 0.0) config_.dt = 1.0 / config_.scan_rate;
  if (config_.dt <= 0.0) {
    throw std::invalid_argument("Engine: dt must be positive");
  }
  if (config_.sample_interval <= 0.0) {
    throw std::invalid_argument("Engine: sample_interval must be positive");
  }
  if (config_.patch_rate < 0.0 || config_.disinfect_rate < 0.0 ||
      config_.infection_latency < 0.0 ||
      config_.global_bandwidth_probes_per_sec < 0.0) {
    throw std::invalid_argument("Engine: lifecycle rates must be ≥ 0");
  }
  if (config_.shards < 0) {
    throw std::invalid_argument("Engine: shards must be ≥ 0");
  }
}

net::Ipv4 Engine::PublicFacingAddress(const Host& host) const {
  if (!host.behind_nat()) return host.address;
  if (nats_ == nullptr) {
    throw std::logic_error("Engine: NATed host but no NatDirectory");
  }
  return nats_->Get(host.nat_site).public_address;
}

void Engine::Infect(HostId id, double time) {
  Host& host = population_.host(id);
  if (host.state != HostState::kVulnerable) return;
  host.state = HostState::kInfected;
  host.infected_at = time;
  ++ever_infected_;
  if (vulnerable_ > 0) --vulnerable_;
  pending_.push_back(
      PendingActivation{time + config_.infection_latency, id});
}

void Engine::ActivateDue(double time) {
  while (pending_cursor_ < pending_.size() &&
         pending_[pending_cursor_].activate_at <= time) {
    const HostId id = pending_[pending_cursor_].host;
    ++pending_cursor_;
    // A host disinfected while still latent never starts scanning.
    if (population_.host(id).state != HostState::kInfected) continue;
    const std::uint64_t entropy = rng_.Next();
    infected_.push_back(id);
    scanners_.push_back(worm_.MakeScanner(population_.host(id), entropy));
    // NAT resolution hoisted out of the probe loop: the public-facing
    // source address is fixed for the scanner's lifetime.
    scanner_sources_.push_back(PublicFacingAddress(population_.host(id)));
    // The scanner's private probe stream (loss draws).  Derived from the
    // same activation entropy as the targeting state, so a probe's
    // classification is a pure function of (scanner, probe index) — the
    // property that lets shards classify probes without sharing an RNG.
    scanner_rngs_.emplace_back(prng::Mix64(entropy ^ kProbeStreamSalt));
    scanner_entropies_.push_back(entropy);
    if (sharded_faults_active_) {
      scanner_fault_rngs_.emplace_back(
          prng::Mix64(entropy ^ kFaultStreamSalt ^ fault_stream_salt_));
    }
  }
  if (pending_cursor_ == pending_.size() && !pending_.empty()) {
    pending_.clear();
    pending_cursor_ = 0;
  }
}

void Engine::ApplyLifecycleEvents(double time, double dt) {
  // Disinfection: expected events = rate · dt · #scanning.
  if (config_.disinfect_rate > 0.0 && !infected_.empty()) {
    disinfect_credit_ +=
        config_.disinfect_rate * dt * static_cast<double>(infected_.size());
    while (disinfect_credit_ >= 1.0 && !infected_.empty()) {
      disinfect_credit_ -= 1.0;
      const auto index = static_cast<std::size_t>(
          rng_.UniformBelow(static_cast<std::uint32_t>(infected_.size())));
      Host& host = population_.host(infected_[index]);
      host.state = HostState::kImmune;
      ++immune_;
      infected_[index] = infected_.back();
      infected_.pop_back();
      std::swap(scanners_[index], scanners_.back());
      scanners_.pop_back();
      scanner_sources_[index] = scanner_sources_.back();
      scanner_sources_.pop_back();
      scanner_rngs_[index] = scanner_rngs_.back();
      scanner_rngs_.pop_back();
      scanner_entropies_[index] = scanner_entropies_.back();
      scanner_entropies_.pop_back();
      if (!scanner_fault_rngs_.empty()) {
        scanner_fault_rngs_[index] = scanner_fault_rngs_.back();
        scanner_fault_rngs_.pop_back();
      }
    }
  }
  // Patching: expected events = rate · dt · #vulnerable; hosts are found by
  // rejection sampling (cheap while any reasonable fraction is vulnerable).
  // Credit is only consumed on a successful patch: when all attempts of a
  // round miss (vulnerable hosts are a tiny sliver of a mostly-immune
  // population), the credit carries over to a later step instead of
  // silently under-counting patch events.
  if (config_.patch_rate > 0.0 && vulnerable_ > 0) {
    patch_credit_ +=
        config_.patch_rate * dt * static_cast<double>(vulnerable_);
    const auto population_size =
        static_cast<std::uint32_t>(population_.size());
    while (patch_credit_ >= 1.0 && vulnerable_ > 0) {
      bool patched = false;
      for (int attempt = 0; attempt < 1024; ++attempt) {
        Host& host = population_.host(rng_.UniformBelow(population_size));
        if (host.state == HostState::kVulnerable) {
          host.state = HostState::kImmune;
          ++immune_;
          --vulnerable_;
          patched = true;
          break;
        }
      }
      if (!patched) break;
      patch_credit_ -= 1.0;
    }
  }
  (void)time;
}

void Engine::SeedInfection(HostId id) { Infect(id, 0.0); }

void Engine::SeedRandomInfections(int count) {
  if (count < 0) throw std::invalid_argument("SeedRandomInfections: count<0");
  const auto population_size = static_cast<std::uint32_t>(population_.size());
  if (population_size == 0 && count > 0) {
    throw std::logic_error("SeedRandomInfections: empty population");
  }
  int seeded = 0;
  // Rejection-sample distinct vulnerable hosts; populations are far larger
  // than seed counts (25 seeds vs 134k hosts), so this terminates quickly.
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts =
      std::uint64_t{1000} * static_cast<std::uint64_t>(count) + 1000;
  while (seeded < count) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "SeedRandomInfections: could not find enough vulnerable hosts");
    }
    const HostId id = rng_.UniformBelow(population_size);
    if (population_.host(id).state == HostState::kVulnerable) {
      Infect(id, 0.0);
      ++seeded;
    }
  }
}

RunResult Engine::Run() {
  NullObserver null_observer;
  return Run(null_observer);
}

RunResult Engine::Run(std::initializer_list<ProbeObserver*> observers) {
  TeeObserver tee{observers};
  if (tee.size() == 1) {
    // One real observer: skip the tee's forwarding layer entirely.
    for (ProbeObserver* observer : observers) {
      if (observer != nullptr) return Run(*observer);
    }
  }
  return Run(tee);
}

RunResult Engine::Run(ProbeObserver& observer) {
  observer.OnAttach();
  RunResult result;
  // Observability is strictly one-way: the locals below feed the global
  // metrics registry once at the end of the run, and nothing in the
  // simulation ever reads a metric, so runs are bit-identical with the
  // registry populated or not.  Stage timers are opt-in
  // (HOTSPOTS_OBS_TIMERS=1): with them off the per-probe cost is one
  // hoisted-bool branch and the clock is never read.
  const bool stage_timers = obs::StageTimersEnabled();
  // Tracing mirrors the stage timers: strictly opt-in (HOTSPOTS_OBS_TRACE),
  // hoisted once into a local, and drained only at serial points (after
  // each commit, at run end) so workers never block on the collector.
  // Spans observe, never steer — fingerprints are bit-identical with
  // tracing on or off (tests/obs_trace_determinism_test.cc).
  const bool tracing = obs::TracingEnabled();
  const EngineSpanIds& span_ids = SpanIds();
  obs::TraceSpan run_span{span_ids.run, tracing};
  // Hoisted fault hook: fault-free runs pay one null test per probe and
  // take exactly the pre-fault code path (bit-identical output).
  DeliveryFaultHook* const fault_hook = fault_hook_;
  if (fault_hook != nullptr) fault_hook->OnRunStart(config_.seed);
  // Sharded fault hooks (fault::DeliveryFaults) move their draws into the
  // parallel phase against per-scanner fault streams; legacy hooks keep
  // the serial commit-time OnProbeVerdict path.  Existing scanners (a
  // second Run on the same engine) get their streams re-derived from the
  // retained activation entropies under this run's salt.
  const bool sharded_faults =
      fault_hook != nullptr && fault_hook->SupportsShardedVerdicts();
  sharded_faults_active_ = sharded_faults;
  scanner_fault_rngs_.clear();
  if (sharded_faults) {
    fault_stream_salt_ = fault_hook->ShardStreamSalt();
    scanner_fault_rngs_.reserve(scanner_entropies_.size());
    for (const std::uint64_t entropy : scanner_entropies_) {
      scanner_fault_rngs_.emplace_back(
          prng::Mix64(entropy ^ kFaultStreamSalt ^ fault_stream_salt_));
    }
  }
  const bool serial_fault_commit = fault_hook != nullptr && !sharded_faults;
  // One outbreak across all cores: probe generation fans out over the
  // shard pool and a serial commit merges the staged shards in index
  // order, so every shard count replays the identical run (see engine.h).
  const int shards = ResolveEngineShards(config_.shards);
  ShardPool pool{shards};
  shard_stages_.resize(static_cast<std::size_t>(shards));
  // Two-phase observer fold: mergeable observers fork one partial state
  // per shard and fold on the worker threads; the commit merges.  A legacy
  // serial fault hook stages *pre-fault* verdicts, so the pre-fold (which
  // reads staged events) is disabled for that run — observers then see the
  // adjusted events through the serial batch path as before.
  MergeableObserver* const mergeable =
      serial_fault_commit ? nullptr : observer.AsMergeable();
  std::vector<std::unique_ptr<ObserverShardState>> fold_states;
  std::vector<ObserverShardState*> fold_state_ptrs;
  if (mergeable != nullptr) {
    fold_states.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      fold_states.push_back(mergeable->ForkShardState(s));
      fold_state_ptrs.push_back(fold_states.back().get());
    }
  }
  const bool serial_spans = mergeable == nullptr || mergeable->WantsSerialSpans();
  const std::uint64_t infected_at_start = ever_infected_;
  std::uint64_t targeting_ns = 0;
  std::uint64_t decide_ns = 0;
  std::uint64_t observe_flush_ns = 0;
  std::uint64_t victim_flush_ns = 0;
  std::uint64_t lifecycle_ns = 0;
  std::uint64_t generate_ns = 0;
  std::uint64_t fault_ns = 0;
  std::uint64_t prefold_ns = 0;
  std::uint64_t commit_ns = 0;
  // Run totals of the sharded-fault tallies, folded into the hook once at
  // run end so its published counters stay exact without hot-path atomics.
  std::uint64_t run_fault_drift = 0;
  std::uint64_t run_fault_losses = 0;
  std::uint64_t run_fault_duplicates = 0;
  const std::uint64_t run_start_ns = stage_timers ? obs::NowNanos() : 0;
  vulnerable_ = population_.CountInState(HostState::kVulnerable);
  result.eligible_population = vulnerable_ + ever_infected_;
  // The stop threshold in exact arithmetic is fraction × eligible; the
  // product carries FP round-off (0.7 × 10 = 6.999…), so a truncating cast
  // would stop one infection early.  Round up unless the product sits just
  // above an integer by round-off alone.
  const double stop_target = config_.stop_at_infected_fraction *
                             static_cast<double>(result.eligible_population);
  const std::uint64_t stop_infected =
      stop_target <= 0.0
          ? 0
          : static_cast<std::uint64_t>(
                std::ceil(stop_target - 1e-9 * std::max(1.0, stop_target)));

  double time = 0.0;
  double probe_credit = 0.0;
  std::uint64_t step = 0;
  std::uint64_t next_sample = 0;  ///< Next due sample is next_sample·interval.
  // Sample-due comparisons tolerate round-off in k·interval vs step·dt so a
  // sample scheduled exactly on a step boundary is not pushed a step late.
  const double sample_slack = 1e-9 * config_.sample_interval;

  // Each step runs in two phases.  Generate: every shard walks its
  // contiguous slice of the scanning population, classifies probes from
  // per-scanner RNG streams, resolves victim candidates against the
  // immutable population index, and stages everything into its ShardStage
  // — no locks, no shared writes.  Commit (serial, shard 0 first): the
  // staged shards are merged in index order, which reconstructs exactly
  // the serial scanner-major emission order, so observers, the fault
  // hook's private stream, and infections are shard-count-invariant.
  // Deferring infections to the commit is exact: they take effect within
  // the same step at the same timestamp, in emission order, and nothing
  // reads the infection counters mid-step.
  constexpr std::size_t kBatchCapacity = 1024;
  event_buffer_.clear();
  event_buffer_.reserve(kBatchCapacity);
  const auto flush_events = [&] {
    if (event_buffer_.empty()) return;
    if (stage_timers) {
      const std::uint64_t t0 = obs::NowNanos();
      observer.OnProbeBatch(event_buffer_);
      observe_flush_ns += obs::NowNanos() - t0;
    } else {
      observer.OnProbeBatch(event_buffer_);
    }
    event_buffer_.clear();
  };

  while (time < config_.end_time && result.total_probes < config_.max_probes &&
         ever_infected_ < stop_infected) {
    obs::TraceSpan step_span{span_ids.step, tracing};
    {
      obs::TraceSpan lifecycle_span{span_ids.lifecycle, tracing};
      if (stage_timers) {
        const std::uint64_t t0 = obs::NowNanos();
        ActivateDue(time);
        ApplyLifecycleEvents(time, config_.dt);
        lifecycle_ns += obs::NowNanos() - t0;
      } else {
        ActivateDue(time);
        ApplyLifecycleEvents(time, config_.dt);
      }
    }
    // Emit *every* sample due by now at its scheduled time k·interval: an
    // integer schedule cannot drift, and steps larger than the sampling
    // interval yield one (staircase-repeated) point per due sample instead
    // of silently skipping intervals.
    while (static_cast<double>(next_sample) * config_.sample_interval <=
           time + sample_slack) {
      result.series.push_back(SamplePoint{
          static_cast<double>(next_sample) * config_.sample_interval,
          ever_infected_, result.total_probes});
      ++next_sample;
    }
    if (infected_.empty() && pending_cursor_ >= pending_.size()) {
      break;  // Nothing will ever happen again.
    }

    // Probes per infected host this step (usually exactly 1).  Under a
    // global bandwidth cap, the outbreak throttles itself: the effective
    // per-host rate is capacity / #infected once that is lower.
    double effective_rate = config_.scan_rate;
    if (config_.global_bandwidth_probes_per_sec > 0.0 && !infected_.empty()) {
      effective_rate =
          std::min(effective_rate, config_.global_bandwidth_probes_per_sec /
                                       static_cast<double>(infected_.size()));
    }
    probe_credit += effective_rate * config_.dt;
    const int probes_per_host = static_cast<int>(probe_credit);
    probe_credit -= probes_per_host;

    // Hosts activated during this step were appended beyond `active` (or
    // are still latent) and therefore start scanning at a later step.
    const std::size_t active = infected_.size();
    if (probes_per_host > 0 && active > 0) {
      // Small steps run fewer shards (down to one, inline): the partition
      // is by scanner index, so the committed stream is the same however
      // many shards actually execute.
      const std::uint64_t step_work =
          static_cast<std::uint64_t>(active) *
          static_cast<std::uint64_t>(probes_per_host);
      const int step_shards = static_cast<int>(std::min<std::uint64_t>(
          static_cast<std::uint64_t>(shards),
          std::max<std::uint64_t>(1, step_work / kMinProbesPerShard)));

      // -- Generate: optimistic, parallel, side-effect-free ------------
      const auto generate = [&](int s) {
        ShardStage& stage = shard_stages_[static_cast<std::size_t>(s)];
        stage.Clear();
        // The pool always dispatches every shard; on small steps the ones
        // beyond step_shards have an empty slice and return immediately.
        if (s >= step_shards) return;
        // Worker-side span for this shard's whole slice; the pre-fold nests
        // inside it, so per-worker busy time is the sum of generate spans.
        obs::TraceSpan generate_span{span_ids.generate, tracing};
        const auto slot = static_cast<std::size_t>(s);
        const auto slots = static_cast<std::size_t>(step_shards);
        const std::size_t begin = active * slot / slots;
        const std::size_t end = active * (slot + 1) / slots;
        for (std::size_t i = begin; i < end; ++i) {
          const HostId src_id = infected_[i];
          const Host& src = population_.host(src_id);
          const net::Ipv4 src_address = scanner_sources_[i];
          prng::Xoshiro256& probe_rng = scanner_rngs_[i];
          prng::Xoshiro256* const fault_rng =
              sharded_faults ? &scanner_fault_rngs_[i] : nullptr;
          HostScanner& scanner = *scanners_[i];
          topology::Probe probe;
          probe.src = src.address;
          probe.src_site = src.nat_site;
          probe.src_org = src.org;
          for (int p = 0; p < probes_per_host; ++p) {
            net::Ipv4 target;
            topology::Delivery verdict;
            if (stage_timers) {
              const std::uint64_t t0 = obs::NowNanos();
              target = scanner.NextTarget(probe_rng);
              const std::uint64_t t1 = obs::NowNanos();
              probe.dst = target;
              verdict = reachability_.Decide(probe, probe_rng);
              stage.decide_ns += obs::NowNanos() - t1;
              stage.targeting_ns += t1 - t0;
            } else {
              target = scanner.NextTarget(probe_rng);
              probe.dst = target;
              verdict = reachability_.Decide(probe, probe_rng);
            }
            ++stage.probes;
            // Sharded fault adjustment happens here, in the parallel
            // phase, from the scanner's private fault stream — staged
            // events already carry post-fault verdicts, so the commit is
            // uniform with the fault-free path.  Non-delivered probes
            // pass through draw-free, matching the serial hook exactly.
            bool duplicate = false;
            if (sharded_faults &&
                verdict == topology::Delivery::kDelivered) {
              const std::uint64_t f0 = stage_timers ? obs::NowNanos() : 0;
              const DeliveryFaultHook::Outcome adjusted =
                  fault_hook->ShardProbeVerdict(time, target, verdict,
                                                *fault_rng);
              if (stage_timers) stage.fault_ns += obs::NowNanos() - f0;
              if (adjusted.verdict != topology::Delivery::kDelivered) {
                if (adjusted.verdict ==
                    topology::Delivery::kIngressFiltered) {
                  ++stage.fault_drift;
                } else {
                  ++stage.fault_losses;
                }
                verdict = adjusted.verdict;
              } else if (adjusted.duplicate) {
                duplicate = true;
                ++stage.fault_duplicates;
              }
            }
            ++stage.delivery_counts[static_cast<std::size_t>(verdict)];
            stage.events.push_back(
                ProbeEvent{time, src_id, src_address, target, verdict});
            if (verdict == topology::Delivery::kDelivered) {
              if (duplicate) {
                // Second observer-visible arrival of the same packet; it
                // infects idempotently through the original's victim, so
                // it stages an event + tally but no extra victim key.
                ++stage.delivery_counts[static_cast<std::size_t>(verdict)];
                stage.events.push_back(
                    ProbeEvent{time, src_id, src_address, target, verdict});
              }
              stage.victim_keys.emplace_back(net::IsPrivate(target)
                                                 ? src.nat_site
                                                 : topology::kPublicSite,
                                             target);
            }
          }
        }
        // Resolve this shard's victim candidates against the population
        // index (membership is immutable during a run, only host *state*
        // changes — at commit, never here), prefetching ahead of use.
        const std::uint64_t v0 = stage_timers ? obs::NowNanos() : 0;
        constexpr std::size_t kPrefetchAhead = 8;
        const std::size_t count = stage.victim_keys.size();
        stage.victims.resize(count);
        for (std::size_t i = 0; i < count; ++i) {
          if (i + kPrefetchAhead < count) {
            const auto& [site, dst] = stage.victim_keys[i + kPrefetchAhead];
            population_.PrefetchFind(site, dst);
          }
          const auto& [site, dst] = stage.victim_keys[i];
          stage.victims[i] = population_.FindInSite(site, dst);
        }
        if (stage_timers) stage.victim_ns += obs::NowNanos() - v0;
        // -- Pre-fold: mergeable observers fold this shard's staged
        // (post-fault) events into their forked partial state, still on
        // the worker thread.  Only ordered side effects remain for the
        // serial merge.
        if (mergeable != nullptr && !stage.events.empty()) {
          obs::TraceSpan prefold_span{span_ids.prefold, tracing};
          const std::uint64_t p0 = stage_timers ? obs::NowNanos() : 0;
          mergeable->OnShardBatch(
              *fold_state_ptrs[static_cast<std::size_t>(s)], stage.events);
          if (stage_timers) stage.prefold_ns += obs::NowNanos() - p0;
        }
      };
      // Time-indexed hook state (ACL drift) advances serially before the
      // fan-out so ShardProbeVerdict stays read-only.
      if (sharded_faults) fault_hook->BeginStep(time);
      const std::uint64_t g0 = stage_timers ? obs::NowNanos() : 0;
      if (step_shards == 1) {
        generate(0);
      } else {
        pool.Run(generate);
      }
      if (stage_timers) generate_ns += obs::NowNanos() - g0;

      // -- Commit: serial merge in shard-major order -------------------
      const std::uint64_t c0 = stage_timers ? obs::NowNanos() : 0;
      const std::uint64_t commit_begin_ns = tracing ? obs::NowNanos() : 0;
      for (int s = 0; s < step_shards; ++s) {
        ShardStage& stage = shard_stages_[static_cast<std::size_t>(s)];
        targeting_ns += stage.targeting_ns;
        decide_ns += stage.decide_ns;
        victim_flush_ns += stage.victim_ns;
        fault_ns += stage.fault_ns;
        prefold_ns += stage.prefold_ns;
        if (serial_fault_commit) {
          // Post-decision fault layer: may degrade a delivered probe or
          // request an in-flight duplicate, never resurrect a drop.  The
          // hook's private stream consumes the *committed* order, so its
          // draws are shard-count-invariant.
          std::size_t victim_cursor = 0;
          for (const ProbeEvent& staged : stage.events) {
            topology::Delivery verdict = staged.delivery;
            HostId victim = kInvalidHost;
            if (verdict == topology::Delivery::kDelivered) {
              victim = stage.victims[victim_cursor++];
            }
            const DeliveryFaultHook::Outcome adjusted =
                fault_hook->OnProbeVerdict(time, staged.dst, verdict);
            if (verdict == topology::Delivery::kDelivered &&
                adjusted.verdict != topology::Delivery::kDelivered) {
              ++result.fault_injected_drops;
            }
            verdict = adjusted.verdict;
            const bool duplicate = adjusted.duplicate &&
                                   verdict == topology::Delivery::kDelivered;
            ++result.total_probes;
            ++result.delivery_counts[static_cast<std::size_t>(verdict)];
            event_buffer_.push_back(ProbeEvent{staged.time, staged.src_host,
                                               staged.src_address, staged.dst,
                                               verdict});
            if (event_buffer_.size() == kBatchCapacity) flush_events();
            if (duplicate) {
              // The duplicate is a second observer-visible arrival of the
              // same packet; it can infect (idempotently) but is not an
              // emitted probe, so total_probes excludes it.
              ++result.fault_duplicates;
              ++result.delivery_counts[static_cast<std::size_t>(verdict)];
              event_buffer_.push_back(ProbeEvent{staged.time, staged.src_host,
                                                 staged.src_address,
                                                 staged.dst, verdict});
              if (event_buffer_.size() == kBatchCapacity) flush_events();
            }
            // A hook can only degrade, so a post-fault delivery always has
            // its pre-resolved victim; infect it (idempotently) now.
            if (verdict == topology::Delivery::kDelivered &&
                victim != kInvalidHost) {
              Infect(victim, time);
            }
          }
        } else {
          result.total_probes += stage.probes;
          for (std::size_t i = 0; i < stage.delivery_counts.size(); ++i) {
            result.delivery_counts[i] += stage.delivery_counts[i];
          }
          result.fault_injected_drops +=
              stage.fault_drift + stage.fault_losses;
          result.fault_duplicates += stage.fault_duplicates;
          run_fault_drift += stage.fault_drift;
          run_fault_losses += stage.fault_losses;
          run_fault_duplicates += stage.fault_duplicates;
          // Commits are zero-copy: the shard's staged (post-fault) events
          // go out as one span in committed order — through the plain
          // batch path, or through OnCommittedSpan when a mergeable
          // observer still wants ordered spans (e.g. a tee with a trace
          // writer).  A purely mergeable observer already folded its
          // shard's events in the parallel phase, so no span is sent.
          if (serial_spans && !stage.events.empty()) {
            const std::uint64_t t0 = stage_timers ? obs::NowNanos() : 0;
            if (mergeable != nullptr) {
              mergeable->OnCommittedSpan(stage.events);
            } else {
              observer.OnProbeBatch(stage.events);
            }
            if (stage_timers) observe_flush_ns += obs::NowNanos() - t0;
          }
          for (const HostId victim : stage.victims) {
            if (victim != kInvalidHost) Infect(victim, time);
          }
        }
      }
      flush_events();
      // -- Merge: serial shard-major fold of the observer partials.  All
      // ordered side effects (alert-threshold crossings, first-alert
      // times) happen inside this call, so they are bit-identical to a
      // serial run.
      if (mergeable != nullptr) {
        mergeable->MergeShardStates(std::span<ObserverShardState* const>(
            fold_state_ptrs.data(), fold_state_ptrs.size()));
      }
      if (stage_timers) commit_ns += obs::NowNanos() - c0;
      if (tracing) {
        // Manual span (the commit region stays unscoped) plus the serial
        // drain point: the workers are parked after a commit, so draining
        // here never contends with a producer mid-slice.
        auto& collector = obs::SpanCollector::Global();
        collector.Append(
            {commit_begin_ns, obs::NowNanos(), span_ids.commit});
        collector.Drain();
      }
#ifndef NDEBUG
      // Debug builds re-check conservation at every shard commit, so a
      // merge that drops or double-counts a staged probe fails at the
      // offending step, not at run end.
      EngineAudit::CheckConservation(result);
#endif
    }
    // Recompute instead of accumulating: step·dt has one rounding, a running
    // sum has billions, enough to skew long runs' sample alignment.
    ++step;
    time = static_cast<double>(step) * config_.dt;
  }

  // Run-scoped observer partials (unique-source sets, registry counter
  // totals) and the hook's fault-counter tallies fold once, serially.
  if (mergeable != nullptr) {
    mergeable->FinalizeShardStates(std::span<ObserverShardState* const>(
        fold_state_ptrs.data(), fold_state_ptrs.size()));
  }
  if (sharded_faults) {
    fault_hook->FoldShardTallies(run_fault_drift, run_fault_losses,
                                 run_fault_duplicates);
  }
  sharded_faults_active_ = false;
  scanner_fault_rngs_.clear();

  result.series.push_back(
      SamplePoint{time, ever_infected_, result.total_probes});
  result.end_time = time;
  result.final_infected = ever_infected_;
  result.final_immune = immune_;
  // The conservation invariant is cheap enough to check in every build at
  // run end; debug builds additionally checked it per step-commit above.
  EngineAudit::CheckConservation(result);

  // One batched fold into the registry per run — the per-probe path never
  // touches shared metrics state.
  auto& registry = obs::Registry::Global();
  registry.GetCounter("engine.runs").Increment();
  registry.GetGauge("engine.shards").Set(static_cast<double>(shards));
  registry.GetCounter("engine.steps").Add(step);
  registry.GetCounter("engine.probes").Add(result.total_probes);
  registry.GetCounter("engine.infections")
      .Add(ever_infected_ - infected_at_start);
  registry.GetCounter("engine.samples").Add(result.series.size());
  for (std::size_t i = 0; i < result.delivery_counts.size(); ++i) {
    if (result.delivery_counts[i] > 0) {
      registry.GetCounter(kDeliveryCounterNames[i])
          .Add(result.delivery_counts[i]);
    }
  }
  if (result.fault_injected_drops > 0) {
    registry.GetCounter("engine.fault.injected_drops")
        .Add(result.fault_injected_drops);
  }
  if (result.fault_duplicates > 0) {
    registry.GetCounter("engine.fault.duplicates")
        .Add(result.fault_duplicates);
  }
  // Run-end drain: whatever the last partial step left in the rings is
  // collected before the exporters take the timeline.
  if (tracing) obs::SpanCollector::Global().Drain();
  if (stage_timers) {
    registry.GetCounter("engine.stage.targeting.nanos").Add(targeting_ns);
    registry.GetCounter("engine.stage.decide.nanos").Add(decide_ns);
    registry.GetCounter("engine.stage.observe_flush.nanos")
        .Add(observe_flush_ns);
    registry.GetCounter("engine.stage.victim_flush.nanos")
        .Add(victim_flush_ns);
    registry.GetCounter("engine.stage.lifecycle.nanos").Add(lifecycle_ns);
    // Phase view (see engine.h): generate is the parallel-phase wall
    // clock, fault/prefold are summed per-shard work (they overlap
    // generate), commit is the serial merge wall clock.  commit / run is
    // the serial fraction micro_hotpath reports.
    registry.GetCounter("engine.stage.generate.nanos").Add(generate_ns);
    registry.GetCounter("engine.stage.fault.nanos").Add(fault_ns);
    registry.GetCounter("engine.stage.prefold.nanos").Add(prefold_ns);
    registry.GetCounter("engine.stage.commit.nanos").Add(commit_ns);
    registry.GetCounter("engine.run.nanos")
        .Add(obs::NowNanos() - run_start_ns);
  }
  return result;
}

}  // namespace hotspots::sim
