#include "sim/population.h"

#include <stdexcept>

namespace hotspots::sim {

HostId Population::AddHost(net::Ipv4 address, topology::SiteId site) {
  const HostId id = static_cast<HostId>(hosts_.size());
  if (!by_address_.Insert(Key(site, address), id)) {
    throw std::invalid_argument("Population: duplicate (site, address): " +
                                address.ToString());
  }
  Host host;
  host.address = address;
  host.nat_site = site;
  hosts_.push_back(host);
  return id;
}

void Population::Build(const topology::AllocationRegistry* orgs) {
  if (orgs == nullptr) return;
  for (Host& host : hosts_) {
    // NATed hosts live in private space, which no organization holds; their
    // org identity would be that of the NAT's public side, which the
    // experiments in the paper never need.
    host.org = host.behind_nat() ? topology::kInvalidOrg
                                 : orgs->OrgOf(host.address);
  }
}

void Population::ResetAllToVulnerable() {
  for (Host& host : hosts_) {
    host.state = HostState::kVulnerable;
    host.infected_at = -1.0;
  }
}

std::size_t Population::CountInState(HostState state) const {
  std::size_t count = 0;
  for (const Host& host : hosts_) {
    if (host.state == state) ++count;
  }
  return count;
}

}  // namespace hotspots::sim
