// The Slammer worm's flawed PRNG targeting (Section 4.2.3).
//
// Slammer generates targets with the linear congruential generator
//     s ← 214013·s + b   (mod 2^32)
// and fires one UDP packet at each successive state.  The author intended
// b = 0xFFD9613C, but an OR instruction used in place of XOR leaves the
// sqlsort.dll Import Address Table entry in ebx OR-ed into the constant; the
// *effective* increment is 0xFFD9613C ⊕ IAT for each of the three widely
// deployed sqlsort.dll versions:
//
//     IAT 0x77F8313C → b = 0x88215000
//     IAT 0x77E89B18 → b = 0x8831FA24   (the value quoted in the paper)
//     IAT 0x77EA094C → b = 0x88336870
//
// With these increments the LCG splits the 32-bit space into exactly 64
// cycles (two per power-of-two length plus four fixed points — see
// prng/lcg_cycles.h), so every infected host is trapped scanning only the
// addresses of the cycle its initial seed landed on.  That is both classes
// of Slammer hotspot: per-host bias (short cycles look like targeted DoS)
// and aggregate bias (addresses on short cycles see far fewer unique
// sources).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "prng/lcg.h"
#include "prng/lcg_cycles.h"
#include "sim/targeting.h"

namespace hotspots::worms {

/// The increment the worm author apparently intended.
inline constexpr std::uint32_t kSlammerIntendedIncrement = 0xFFD9613Cu;

/// The three widely reported sqlsort.dll Import Address Table entries.
inline constexpr std::array<std::uint32_t, 3> kSqlsortIatEntries = {
    0x77F8313Cu, 0x77E89B18u, 0x77EA094Cu};

/// The effective increments: intended ⊕ IAT (the OR bug destroyed the
/// intended constant; XOR-ing recovers what actually ends up in the add).
[[nodiscard]] std::array<std::uint32_t, 3> SlammerEffectiveIncrements();

/// LCG parameters for one DLL version (index into kSqlsortIatEntries).
[[nodiscard]] prng::LcgParams SlammerLcgParams(int dll_version);

/// Cycle analyzer for one DLL version.
[[nodiscard]] prng::LcgCycleAnalyzer SlammerCycleAnalyzer(int dll_version);

/// Slammer worm model.  Each infected host draws a DLL version (weighted)
/// and a uniform 32-bit initial seed, then emits the raw LCG state sequence
/// as targets, exactly like the real worm.
class SlammerWorm final : public sim::Worm {
 public:
  /// `dll_version_weights` gives the population share of each sqlsort.dll
  /// version; defaults to equal thirds.
  explicit SlammerWorm(std::array<double, 3> dll_version_weights = {1, 1, 1});

  [[nodiscard]] std::string_view name() const override { return "Slammer"; }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  /// Deterministic scanner for forensics: fixed DLL version and seed.
  [[nodiscard]] static std::unique_ptr<sim::HostScanner> MakeFixedScanner(
      int dll_version, std::uint32_t seed);

 private:
  std::array<double, 3> cumulative_;
};

}  // namespace hotspots::worms
