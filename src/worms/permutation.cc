#include "worms/permutation.h"

#include "prng/splitmix.h"

namespace hotspots::worms {
namespace {

class PermutationScanner final : public sim::HostScanner {
 public:
  PermutationScanner(const FeistelPermutation* permutation,
                     std::uint32_t start_index)
      : permutation_(permutation), index_(start_index) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    return net::Ipv4{permutation_->Forward(index_++)};
  }

 private:
  const FeistelPermutation* permutation_;
  std::uint32_t index_;
};

}  // namespace

std::uint16_t FeistelPermutation::RoundFunction(std::uint16_t half,
                                                std::uint64_t subkey) {
  return static_cast<std::uint16_t>(
      prng::Mix64(subkey ^ half) >> 48);
}

std::uint32_t FeistelPermutation::Forward(std::uint32_t index) const {
  auto left = static_cast<std::uint16_t>(index >> 16);
  auto right = static_cast<std::uint16_t>(index);
  for (int round = 0; round < 4; ++round) {
    const std::uint16_t next_left = right;
    right = static_cast<std::uint16_t>(
        left ^ RoundFunction(right, key_ + static_cast<std::uint64_t>(round)));
    left = next_left;
  }
  return (static_cast<std::uint32_t>(left) << 16) | right;
}

std::uint32_t FeistelPermutation::Backward(std::uint32_t image) const {
  auto left = static_cast<std::uint16_t>(image >> 16);
  auto right = static_cast<std::uint16_t>(image);
  for (int round = 3; round >= 0; --round) {
    const std::uint16_t previous_right = left;
    left = static_cast<std::uint16_t>(
        right ^
        RoundFunction(left, key_ + static_cast<std::uint64_t>(round)));
    right = previous_right;
  }
  return (static_cast<std::uint32_t>(left) << 16) | right;
}

std::unique_ptr<sim::HostScanner> PermutationWorm::MakeScanner(
    const sim::Host&, std::uint64_t entropy) const {
  return std::make_unique<PermutationScanner>(
      &permutation_, static_cast<std::uint32_t>(prng::Mix64(entropy)));
}

}  // namespace hotspots::worms
