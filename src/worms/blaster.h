// The Blaster worm's targeting algorithm (Section 4.2.2).
//
// Blaster seeds msvcrt's srand() with GetTickCount() — a terrible entropy
// source because the worm launches from a registry run key right after
// boot, so the seed is confined to boot-duration ticks (≈30,000 ms ± 1,000).
// From that seed it picks a starting /24 (60 % fully "random" via rand(),
// 40 % derived from the host's own address minus a small offset) and then
// sweeps the address space *sequentially* upward from the starting point.
//
// The hotspot mechanism: the restricted seed range restricts the set of
// possible starting /24s, so freshly rebooted Blaster hosts pile onto the
// same slices of the space; a sensor just "downstream" of a popular start
// observes a spike of unique sources (the paper's Figure 1).
//
// `BlasterWorm::StartAddressForSeed` exposes the exact seed→start mapping so
// the forensics layer can invert observed spikes back to plausible
// GetTickCount values, reproducing the paper's 1–20-minute reconstruction.
#pragma once

#include <memory>

#include "prng/msvc_rand.h"
#include "prng/tickcount.h"
#include "sim/targeting.h"

namespace hotspots::worms {

/// Tunables of the Blaster model.
struct BlasterConfig {
  /// Probability the start is drawn from rand() rather than the local
  /// address (the decompiled worm uses 60 %).
  double random_start_probability = 0.6;
  /// Local starts back off the host's own third octet by rand() % 20.
  std::uint32_t local_backoff_range = 20;
};

class BlasterWorm final : public sim::Worm {
 public:
  explicit BlasterWorm(prng::BootEntropyModel boot_model,
                       BlasterConfig config = {});

  /// Blaster with the paper's measured boot-entropy model.
  [[nodiscard]] static BlasterWorm Paper() {
    return BlasterWorm{prng::BootEntropyModel::Paper()};
  }

  [[nodiscard]] std::string_view name() const override { return "Blaster"; }

  /// Blaster spreads over TCP/135: darknets must answer the SYN to ever
  /// see an identifying payload.
  [[nodiscard]] bool requires_handshake() const override { return true; }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  /// The deterministic seed→start mapping for a *random-start* instance:
  /// what srand(tick_count); A=rand()%254+1; B=rand()%254; C=rand()%254
  /// produces.  This is the function the forensics layer inverts.
  [[nodiscard]] static net::Ipv4 StartAddressForSeed(std::uint32_t tick_count);

  /// Start address for a *local-start* instance on `own` (40 % branch).
  [[nodiscard]] net::Ipv4 LocalStartAddress(net::Ipv4 own,
                                            prng::MsvcRand& rand) const;

  [[nodiscard]] const prng::BootEntropyModel& boot_model() const {
    return boot_model_;
  }
  [[nodiscard]] const BlasterConfig& config() const { return config_; }

 private:
  prng::BootEntropyModel boot_model_;
  BlasterConfig config_;
};

/// The sequential sweep itself, reusable by the analytic footprint model:
/// yields base, base+1, base+2, … skipping non-targetable space, wrapping
/// at the top of the IPv4 space.
class SequentialSweep {
 public:
  explicit SequentialSweep(net::Ipv4 start) : cursor_(start.value()) {}

  [[nodiscard]] net::Ipv4 Next();

  [[nodiscard]] net::Ipv4 cursor() const { return net::Ipv4{cursor_}; }

 private:
  std::uint32_t cursor_;
};

}  // namespace hotspots::worms
