// The uniform-scanning baseline.
//
// The paper's null model: "a worm instance chooses the next target address
// from a uniform random distribution from 0 to 2^32" (Section 2).  Hotspots
// are defined as deviation from this worm's behaviour, so every experiment
// uses it as the control.
#pragma once

#include <memory>

#include "sim/targeting.h"

namespace hotspots::worms {

class UniformWorm final : public sim::Worm {
 public:
  [[nodiscard]] std::string_view name() const override { return "Uniform"; }
  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;
};

}  // namespace hotspots::worms
