#include "worms/witty.h"

#include "prng/xoshiro.h"

namespace hotspots::worms {
namespace {

constexpr prng::LcgParams kWittyLcg{prng::kMsvcMultiplier,
                                    prng::kMsvcIncrement, 32};

class WittyScanner final : public sim::HostScanner {
 public:
  explicit WittyScanner(std::uint32_t seed) : lcg_(kWittyLcg, seed) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    const std::uint32_t hi = lcg_.Next() >> 16;
    const std::uint32_t lo = lcg_.Next() >> 16;
    return net::Ipv4{(hi << 16) | lo};
  }

 private:
  prng::Lcg lcg_;
};

}  // namespace

int WittyPreimageCount(net::Ipv4 target) {
  const std::uint32_t hi = target.value() >> 16;
  const std::uint32_t lo = target.value() & 0xFFFFu;
  int count = 0;
  // Candidate states with the right top half: s = (hi << 16) | t.
  for (std::uint32_t t = 0; t < (1u << 16); ++t) {
    const std::uint32_t s = (hi << 16) | t;
    if ((kWittyLcg.Step(s) >> 16) == lo) ++count;
  }
  return count;
}

double WittyUnreachableFraction(int samples, std::uint64_t seed) {
  prng::Xoshiro256 rng{seed};
  int unreachable = 0;
  for (int i = 0; i < samples; ++i) {
    if (WittyPreimageCount(net::Ipv4{rng.NextU32()}) == 0) ++unreachable;
  }
  return samples == 0 ? 0.0
                      : static_cast<double>(unreachable) /
                            static_cast<double>(samples);
}

std::unique_ptr<sim::HostScanner> WittyWorm::MakeScanner(
    const sim::Host&, std::uint64_t entropy) const {
  return std::make_unique<WittyScanner>(static_cast<std::uint32_t>(entropy));
}

}  // namespace hotspots::worms
