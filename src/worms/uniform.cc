#include "worms/uniform.h"

namespace hotspots::worms {
namespace {

class UniformScanner final : public sim::HostScanner {
 public:
  explicit UniformScanner(std::uint64_t entropy) : rng_(entropy) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    // Each instance owns a well-seeded generator; the entire 32-bit space is
    // equally likely, exactly as in the simple epidemic model.
    return net::Ipv4{rng_.NextU32()};
  }

 private:
  prng::Xoshiro256 rng_;
};

}  // namespace

std::unique_ptr<sim::HostScanner> UniformWorm::MakeScanner(
    const sim::Host&, std::uint64_t entropy) const {
  return std::make_unique<UniformScanner>(entropy);
}

}  // namespace hotspots::worms
