// Permutation scanning (Staniford et al., "How to 0wn the Internet in Your
// Spare Time") — one of the scanning strategies the paper lists as an
// algorithmic factor.
//
// All instances share a pseudo-random permutation of the 32-bit space
// (implemented as a 4-round Feistel network keyed by the worm release);
// each new instance starts at a random index of the permutation and walks
// it sequentially.  Instances therefore partition the space implicitly:
// coverage is near-perfect and duplicate probing is rare, but any *single*
// sensor sees sources at a rate governed by where it sits in the
// permutation — another, subtler, deviation from uniform behaviour.
#pragma once

#include <memory>

#include "sim/targeting.h"

namespace hotspots::worms {

/// A keyed pseudo-random permutation of the 32-bit address space.
class FeistelPermutation {
 public:
  explicit constexpr FeistelPermutation(std::uint64_t key) : key_(key) {}

  /// Image of `index` under the permutation.
  [[nodiscard]] std::uint32_t Forward(std::uint32_t index) const;

  /// Preimage: Backward(Forward(x)) == x.
  [[nodiscard]] std::uint32_t Backward(std::uint32_t image) const;

 private:
  [[nodiscard]] static std::uint16_t RoundFunction(std::uint16_t half,
                                                   std::uint64_t subkey);
  std::uint64_t key_;
};

class PermutationWorm final : public sim::Worm {
 public:
  /// `key` identifies the worm release (all instances share it).
  explicit PermutationWorm(std::uint64_t key) : permutation_(key) {}

  [[nodiscard]] std::string_view name() const override {
    return "PermutationScan";
  }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  [[nodiscard]] const FeistelPermutation& permutation() const {
    return permutation_;
  }

 private:
  FeistelPermutation permutation_;
};

}  // namespace hotspots::worms
