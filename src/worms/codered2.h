// The CodeRedII local-preference targeting algorithm (Sections 4.3.1, 5.1).
//
// CodeRedII chooses targets with a strong deliberate locality bias:
//
//     probability 1/2 : keep the host's own first octet   (same /8)
//     probability 3/8 : keep the host's own first two octets (same /16)
//     probability 1/8 : completely random 32-bit address
//
// and regenerates when the candidate is the host's own address, loopback
// (127/8) or multicast/reserved space.  The environmental punchline: when
// the infected host sits behind a NAT with a 192.168.x.y address, "same /8"
// means 192.0.0.0/8 — and since 192.168/16 is the only private /16 in that
// /8, 7/8 of the locally-preferred probes leak onto the public Internet and
// pile onto whatever real blocks live in 192/8 (the paper's M sensor).
//
// The generator models the worm's own PRNG with the msvcrt LCG's raw state
// stream, matching the disassembled worm's structure (mask selection over a
// 32-bit random word).
#pragma once

#include <memory>

#include "prng/lcg.h"
#include "sim/targeting.h"

namespace hotspots::worms {

/// Mask-selection probabilities, expressed in eighths so they sum to 8.
struct CodeRed2Config {
  int eighths_same_slash8 = 4;   ///< 1/2.
  int eighths_same_slash16 = 3;  ///< 3/8.
  int eighths_random = 1;        ///< 1/8.
};

class CodeRed2Worm final : public sim::Worm {
 public:
  explicit CodeRed2Worm(CodeRed2Config config = {});

  [[nodiscard]] std::string_view name() const override { return "CodeRedII"; }

  /// CodeRedII spreads over TCP/80 (see sim::Worm::requires_handshake).
  [[nodiscard]] bool requires_handshake() const override { return true; }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  /// Deterministic scanner for the quarantine harness: the worm running on
  /// a host whose local address is `own`, with a fixed PRNG seed.
  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeQuarantineScanner(
      net::Ipv4 own, std::uint32_t seed) const;

  [[nodiscard]] const CodeRed2Config& config() const { return config_; }

 private:
  CodeRed2Config config_;
};

}  // namespace hotspots::worms
