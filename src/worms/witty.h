// The Witty worm's target construction (Kumar, Paxson, Weaver — the paper's
// reference [13] for "exploiting underlying structure").
//
// Witty drives the msvcrt LCG but builds each 32-bit target from the *top
// 16 bits of two consecutive states*:
//
//     s ← a·s + b;  hi = s ≫ 16
//     s ← a·s + b;  lo = s ≫ 16
//     target = (hi ≪ 16) | lo
//
// Because consecutive states are linked by the recurrence, (hi, lo) pairs
// are not free: an address (hi, lo) is generatable iff some state s with
// s ≫ 16 == hi steps to a state with top half lo.  On average one of the
// 2^16 candidate states does, but the distribution is lumpy — a measurable
// fraction of the address space is *never* generated, and some addresses
// have several preimages and are probed disproportionately often.  That is
// precisely the "underlying structure" Kumar et al. exploited to
// reconstruct the worm's spread, and another concrete PRNG-flaw hotspot.
#pragma once

#include <cstdint>
#include <memory>

#include "prng/lcg.h"
#include "sim/targeting.h"

namespace hotspots::worms {

/// Number of LCG states whose two-step output produces `target`.
/// 0 ⇒ Witty can never probe this address; k ⇒ the address is hit k× as
/// often as the uniform rate.  Cost: one pass over 2^16 candidate states.
[[nodiscard]] int WittyPreimageCount(net::Ipv4 target);

/// Fraction of `samples` random addresses with no Witty preimage,
/// estimated deterministically from `seed`.
[[nodiscard]] double WittyUnreachableFraction(int samples,
                                              std::uint64_t seed);

class WittyWorm final : public sim::Worm {
 public:
  [[nodiscard]] std::string_view name() const override { return "Witty"; }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  /// Witty was a single-UDP-packet worm (ICQ/ISS, port 4000 source).
  [[nodiscard]] bool requires_handshake() const override { return false; }
};

}  // namespace hotspots::worms
