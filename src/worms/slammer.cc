#include "worms/slammer.h"

#include <stdexcept>

namespace hotspots::worms {
namespace {

class SlammerScanner final : public sim::HostScanner {
 public:
  SlammerScanner(prng::LcgParams params, std::uint32_t seed)
      : lcg_(params, seed) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    return net::Ipv4{lcg_.Next()};
  }

 private:
  prng::Lcg lcg_;
};

}  // namespace

std::array<std::uint32_t, 3> SlammerEffectiveIncrements() {
  std::array<std::uint32_t, 3> increments{};
  for (std::size_t i = 0; i < kSqlsortIatEntries.size(); ++i) {
    increments[i] = kSlammerIntendedIncrement ^ kSqlsortIatEntries[i];
  }
  return increments;
}

prng::LcgParams SlammerLcgParams(int dll_version) {
  if (dll_version < 0 || dll_version >= 3) {
    throw std::invalid_argument("SlammerLcgParams: dll_version must be 0..2");
  }
  return prng::LcgParams{prng::kMsvcMultiplier,
                         SlammerEffectiveIncrements()[
                             static_cast<std::size_t>(dll_version)],
                         32};
}

prng::LcgCycleAnalyzer SlammerCycleAnalyzer(int dll_version) {
  return prng::LcgCycleAnalyzer{SlammerLcgParams(dll_version)};
}

SlammerWorm::SlammerWorm(std::array<double, 3> weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("SlammerWorm: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("SlammerWorm: zero weights");
  double running = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    running += weights[i] / total;
    cumulative_[i] = running;
  }
}

std::unique_ptr<sim::HostScanner> SlammerWorm::MakeScanner(
    const sim::Host&, std::uint64_t entropy) const {
  prng::Xoshiro256 rng{entropy};
  const double pick = rng.NextDouble();
  int version = 0;
  while (version < 2 && pick > cumulative_[static_cast<std::size_t>(version)]) {
    ++version;
  }
  return MakeFixedScanner(version, rng.NextU32());
}

std::unique_ptr<sim::HostScanner> SlammerWorm::MakeFixedScanner(
    int dll_version, std::uint32_t seed) {
  return std::make_unique<SlammerScanner>(SlammerLcgParams(dll_version), seed);
}

}  // namespace hotspots::worms
