#include "worms/localpref.h"

#include <stdexcept>

namespace hotspots::worms {
namespace {

class LocalPreferenceScanner final : public sim::HostScanner {
 public:
  LocalPreferenceScanner(net::Ipv4 own, LocalPreferenceConfig config,
                         std::uint64_t entropy)
      : own_(own), config_(config), rng_(entropy) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    const double pick = rng_.NextDouble();
    std::uint32_t mask = 0;
    if (pick < config_.p_same_slash8) {
      mask = 0xFF000000u;
    } else if (pick < config_.p_same_slash8 + config_.p_same_slash16) {
      mask = 0xFFFF0000u;
    } else if (pick < config_.p_same_slash8 + config_.p_same_slash16 +
                          config_.p_same_slash24) {
      mask = 0xFFFFFF00u;
    }
    return net::Ipv4{(own_.value() & mask) | (rng_.NextU32() & ~mask)};
  }

 private:
  net::Ipv4 own_;
  LocalPreferenceConfig config_;
  prng::Xoshiro256 rng_;
};

}  // namespace

LocalPreferenceWorm::LocalPreferenceWorm(LocalPreferenceConfig config)
    : config_(config) {
  const double total =
      config.p_same_slash8 + config.p_same_slash16 + config.p_same_slash24;
  if (config.p_same_slash8 < 0 || config.p_same_slash16 < 0 ||
      config.p_same_slash24 < 0 || total > 1.0) {
    throw std::invalid_argument(
        "LocalPreferenceWorm: probabilities must be ≥0 and sum to ≤1");
  }
}

std::unique_ptr<sim::HostScanner> LocalPreferenceWorm::MakeScanner(
    const sim::Host& host, std::uint64_t entropy) const {
  return std::make_unique<LocalPreferenceScanner>(host.address, config_,
                                                  entropy);
}

}  // namespace hotspots::worms
