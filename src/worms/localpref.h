// Generic local-preference targeting.
//
// A configurable generalization of the CodeRedII / Nimda family: with
// probability p₈ keep the host's /8, with p₁₆ its /16, with p₂₄ its /24,
// otherwise draw uniformly.  Used for the ablation benches that sweep
// locality strength, and as a building block for synthetic threats.  Unlike
// CodeRed2Worm this model uses a well-behaved generator, isolating the
// *local preference* factor from any PRNG-flaw factor.
#pragma once

#include <memory>

#include "sim/targeting.h"

namespace hotspots::worms {

/// Locality mix; the probabilities must be in [0,1] and sum to ≤ 1, with
/// the remainder going to uniform scanning.
struct LocalPreferenceConfig {
  double p_same_slash8 = 0.0;
  double p_same_slash16 = 0.0;
  double p_same_slash24 = 0.0;
};

class LocalPreferenceWorm final : public sim::Worm {
 public:
  explicit LocalPreferenceWorm(LocalPreferenceConfig config);

  [[nodiscard]] std::string_view name() const override {
    return "LocalPreference";
  }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  [[nodiscard]] const LocalPreferenceConfig& config() const { return config_; }

 private:
  LocalPreferenceConfig config_;
};

}  // namespace hotspots::worms
