#include "worms/hitlist.h"

#include <algorithm>
#include <stdexcept>

namespace hotspots::worms {
namespace {

class HitListScanner final : public sim::HostScanner {
 public:
  HitListScanner(const std::vector<net::Prefix>* hit_list,
                 const std::vector<std::uint64_t>* cumulative,
                 int uniform_length, std::uint64_t entropy)
      : hit_list_(hit_list), cumulative_(cumulative),
        uniform_length_(uniform_length), rng_(entropy) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    if (uniform_length_ >= 0) {
      // All prefixes are the same size (the common /16-list case): pick a
      // prefix uniformly and a uniform offset inside it — no search.  This
      // is the per-probe hot path of the Section-5.2 simulations.
      const std::uint64_t draw = rng_.Next();
      const auto index = static_cast<std::size_t>(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(draw)) *
           hit_list_->size()) >>
          32);
      const std::uint64_t offset =
          (draw >> 32) & ~net::Prefix::MaskFor(uniform_length_);
      return (*hit_list_)[index].AddressAt(offset);
    }
    // Mixed sizes: draw a uniform offset into the total covered address
    // count, then binary-search which prefix owns that offset.
    const std::uint64_t total = cumulative_->back();
    const std::uint64_t pick = rng_.Next() % total;
    const auto it =
        std::upper_bound(cumulative_->begin(), cumulative_->end(), pick);
    const auto index =
        static_cast<std::size_t>(it - cumulative_->begin());
    const std::uint64_t offset =
        index == 0 ? pick : pick - (*cumulative_)[index - 1];
    return (*hit_list_)[index].AddressAt(offset);
  }

 private:
  const std::vector<net::Prefix>* hit_list_;
  const std::vector<std::uint64_t>* cumulative_;
  int uniform_length_;  ///< Prefix length if all equal, −1 otherwise.
  prng::Xoshiro256 rng_;
};

}  // namespace

HitListWorm::HitListWorm(std::vector<net::Prefix> hit_list)
    : hit_list_(std::move(hit_list)) {
  if (hit_list_.empty()) {
    throw std::invalid_argument("HitListWorm: empty hit list");
  }
  std::uint64_t running = 0;
  cumulative_.reserve(hit_list_.size());
  uniform_length_ = hit_list_.front().length();
  for (const net::Prefix& prefix : hit_list_) {
    running += prefix.size();
    cumulative_.push_back(running);
    if (prefix.length() != uniform_length_) uniform_length_ = -1;
  }
}

std::unique_ptr<sim::HostScanner> HitListWorm::MakeScanner(
    const sim::Host&, std::uint64_t entropy) const {
  return std::make_unique<HitListScanner>(&hit_list_, &cumulative_,
                                          uniform_length_, entropy);
}

std::uint64_t HitListWorm::CoveredAddresses() const {
  return cumulative_.back();
}

}  // namespace hotspots::worms
