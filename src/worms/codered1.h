// CodeRed v1 — the static-seed bug (the paper's Code-Red lineage, [22]).
//
// The first Code Red's PRNG was seeded with a *constant*, so every infected
// host walked the exact same target sequence: a textbook algorithmic
// hotspot where the addresses on the shared sequence are probed by every
// instance simultaneously and everything else is never probed at all.  The
// later variant (CRv1.5/v2) re-seeded per host, recovering coverage.  Both
// modes are provided; the contrast is used by the ablation benches.
#pragma once

#include <memory>

#include "prng/lcg.h"
#include "sim/targeting.h"

namespace hotspots::worms {

class CodeRed1Worm final : public sim::Worm {
 public:
  /// `static_seed_bug` true reproduces CRv1 (every instance shares
  /// kStaticSeed); false gives the re-seeded CRv1.5 behaviour.
  explicit CodeRed1Worm(bool static_seed_bug = true)
      : static_seed_bug_(static_seed_bug) {}

  /// The constant seed every CRv1 instance starts from.
  static constexpr std::uint32_t kStaticSeed = 0x12345678u;

  [[nodiscard]] std::string_view name() const override {
    return static_seed_bug_ ? "CodeRedV1" : "CodeRedV1.5";
  }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  /// CodeRed spreads over TCP/80; identifying its payload at a darknet
  /// requires an active responder (see telescope/sensor.h).
  [[nodiscard]] bool requires_handshake() const override { return true; }

 private:
  bool static_seed_bug_;
};

}  // namespace hotspots::worms
