#include "worms/blaster.h"

#include "net/special_ranges.h"

namespace hotspots::worms {
namespace {

class BlasterScanner final : public sim::HostScanner {
 public:
  explicit BlasterScanner(net::Ipv4 start) : sweep_(start) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override { return sweep_.Next(); }

 private:
  SequentialSweep sweep_;
};

}  // namespace

BlasterWorm::BlasterWorm(prng::BootEntropyModel boot_model,
                         BlasterConfig config)
    : boot_model_(std::move(boot_model)), config_(config) {}

net::Ipv4 BlasterWorm::StartAddressForSeed(std::uint32_t tick_count) {
  prng::MsvcRand rand{tick_count};
  const auto a = static_cast<std::uint8_t>(rand.NextMod(254) + 1);
  const auto b = static_cast<std::uint8_t>(rand.NextMod(254));
  const auto c = static_cast<std::uint8_t>(rand.NextMod(254));
  return net::Ipv4{a, b, c, 0};
}

net::Ipv4 BlasterWorm::LocalStartAddress(net::Ipv4 own,
                                         prng::MsvcRand& rand) const {
  // The worm starts "near" its own address: same A.B, and backs the third
  // octet off by up to local_backoff_range so it re-covers its own subnet.
  std::uint32_t c = own.octet(2);
  if (c > config_.local_backoff_range) {
    c -= rand.NextMod(config_.local_backoff_range);
  }
  return net::Ipv4{own.octet(0), own.octet(1), static_cast<std::uint8_t>(c), 0};
}

std::unique_ptr<sim::HostScanner> BlasterWorm::MakeScanner(
    const sim::Host& host, std::uint64_t entropy) const {
  prng::Xoshiro256 sim_rng{entropy};
  const std::uint32_t tick = boot_model_.SampleTickCount(sim_rng);
  prng::MsvcRand rand{tick};
  net::Ipv4 start;
  // The real worm draws rand() % 20 and compares against 12 (60 %).
  if (rand.NextMod(20) < static_cast<std::uint32_t>(
                             config_.random_start_probability * 20.0)) {
    start = StartAddressForSeed(tick);
  } else {
    start = LocalStartAddress(host.address, rand);
  }
  return std::make_unique<BlasterScanner>(start);
}

net::Ipv4 SequentialSweep::Next() {
  // Yield the current address, then advance; hop over space that can never
  // hold a victim so the sweep doesn't burn weeks of simulated time inside
  // multicast space (the real worm wastes the probes; the wasted probes
  // carry no information for any experiment).
  const net::Ipv4 target{cursor_};
  ++cursor_;
  while (net::IsNonTargetable(net::Ipv4{cursor_})) {
    // Skip to the end of the non-targetable /8 in one stride.
    cursor_ = (cursor_ | 0x00FFFFFFu) + 1;  // May wrap to 0.0.0.0 — 0/8 is
    if (cursor_ == 0) cursor_ = 0x01000000;  // itself non-targetable.
  }
  return target;
}

}  // namespace hotspots::worms
