#include "worms/codered1.h"

#include "net/special_ranges.h"

namespace hotspots::worms {
namespace {

class CodeRed1Scanner final : public sim::HostScanner {
 public:
  explicit CodeRed1Scanner(std::uint32_t seed)
      : lcg_(prng::LcgParams{prng::kMsvcMultiplier, prng::kMsvcIncrement, 32},
             seed) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const net::Ipv4 candidate{lcg_.Next()};
      if (!net::IsNonTargetable(candidate)) return candidate;
    }
    return net::Ipv4{1, 1, 1, 1};  // Unreachable in practice.
  }

 private:
  prng::Lcg lcg_;
};

}  // namespace

std::unique_ptr<sim::HostScanner> CodeRed1Worm::MakeScanner(
    const sim::Host&, std::uint64_t entropy) const {
  return std::make_unique<CodeRed1Scanner>(
      static_seed_bug_ ? kStaticSeed : static_cast<std::uint32_t>(entropy));
}

}  // namespace hotspots::worms
