// Hit-list targeting (Sections 4.2.1 and 5.2).
//
// Bots and hit-list worms carry a pre-programmed list of target prefixes —
// captured bot commands like "advscan dcom2 194.x.x.x" restrict propagation
// to a slice of the space.  The Section-5.2 simulation gives every infected
// host the same list of /16 prefixes; each probe picks a uniformly random
// address *covered by the list*.  The hotspot is the list itself: space
// outside the list never sees a single probe, so detectors placed there can
// never alert.
#pragma once

#include <memory>
#include <vector>

#include "net/prefix.h"
#include "sim/targeting.h"

namespace hotspots::worms {

class HitListWorm final : public sim::Worm {
 public:
  /// `hit_list` must be non-empty.  Prefixes may have any length; sampling
  /// is uniform over the covered *addresses* (prefixes weighted by size).
  explicit HitListWorm(std::vector<net::Prefix> hit_list);

  [[nodiscard]] std::string_view name() const override { return "HitList"; }

  [[nodiscard]] std::unique_ptr<sim::HostScanner> MakeScanner(
      const sim::Host& host, std::uint64_t entropy) const override;

  [[nodiscard]] const std::vector<net::Prefix>& hit_list() const {
    return hit_list_;
  }

  /// Total addresses covered by the list.
  [[nodiscard]] std::uint64_t CoveredAddresses() const;

 private:
  std::vector<net::Prefix> hit_list_;
  /// Cumulative address counts for weighted prefix selection.
  std::vector<std::uint64_t> cumulative_;
  /// Common prefix length when all entries share one, else −1 (enables the
  /// search-free uniform sampling fast path).
  int uniform_length_ = -1;
};

}  // namespace hotspots::worms
