#include "worms/codered2.h"

#include <stdexcept>

#include "net/special_ranges.h"
#include "prng/msvc_rand.h"

namespace hotspots::worms {
namespace {

class CodeRed2Scanner final : public sim::HostScanner {
 public:
  CodeRed2Scanner(net::Ipv4 own, std::uint32_t seed, CodeRed2Config config)
      : own_(own), config_(config), rand_(seed) {}

  net::Ipv4 NextTarget(prng::Xoshiro256&) override {
    // The real worm draws rand() per decision/octet and retries internally
    // until it has an acceptable candidate; 64 tries make a failure
    // astronomically unlikely, and the fallback below keeps the contract
    // total.  (RAND_MAX+1 is a multiple of 8 and 256, so % is unbiased.)
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::uint32_t selector = rand_.NextMod(8);
      std::uint32_t mask = 0;
      if (selector < static_cast<std::uint32_t>(config_.eighths_same_slash8)) {
        mask = 0xFF000000u;
      } else if (selector <
                 static_cast<std::uint32_t>(config_.eighths_same_slash8 +
                                            config_.eighths_same_slash16)) {
        mask = 0xFFFF0000u;
      }
      const std::uint32_t random_bits =
          (rand_.NextMod(256) << 24) | (rand_.NextMod(256) << 16) |
          (rand_.NextMod(256) << 8) | rand_.NextMod(256);
      const net::Ipv4 candidate{(own_.value() & mask) | (random_bits & ~mask)};

      if (candidate == own_) continue;
      if (net::IsNonTargetable(candidate)) continue;
      return candidate;
    }
    // Unreachable in practice; keep the contract total anyway.
    return net::Ipv4{(own_.value() & 0xFFFF0000u) | 1u};
  }

 private:
  net::Ipv4 own_;
  CodeRed2Config config_;
  prng::MsvcRand rand_;
};

}  // namespace

CodeRed2Worm::CodeRed2Worm(CodeRed2Config config) : config_(config) {
  if (config.eighths_same_slash8 < 0 || config.eighths_same_slash16 < 0 ||
      config.eighths_random < 0 ||
      config.eighths_same_slash8 + config.eighths_same_slash16 +
              config.eighths_random != 8) {
    throw std::invalid_argument("CodeRed2Worm: eighths must be ≥0 and sum to 8");
  }
}

std::unique_ptr<sim::HostScanner> CodeRed2Worm::MakeScanner(
    const sim::Host& host, std::uint64_t entropy) const {
  return MakeQuarantineScanner(host.address,
                               static_cast<std::uint32_t>(entropy));
}

std::unique_ptr<sim::HostScanner> CodeRed2Worm::MakeQuarantineScanner(
    net::Ipv4 own, std::uint32_t seed) const {
  return std::make_unique<CodeRed2Scanner>(own, seed, config_);
}

}  // namespace hotspots::worms
