#include "core/placement.h"

#include <stdexcept>
#include <unordered_set>

#include "net/special_ranges.h"

namespace hotspots::core {
namespace {

/// True if this /24 may host a darknet sensor: public targetable space with
/// no scenario host inside.
[[nodiscard]] bool UsableSensorSlash24(const Scenario& scenario,
                                       std::uint32_t slash24) {
  const net::Ipv4 first{slash24 << 8};
  if (net::IsNonTargetable(first) || net::IsPrivate(first)) return false;
  return !scenario.occupied_slash24s.contains(slash24);
}

[[nodiscard]] net::Prefix Slash24Prefix(std::uint32_t slash24) {
  return net::Prefix{net::Ipv4{slash24 << 8}, 24};
}

}  // namespace

std::vector<net::Prefix> PlaceSensorPerCluster16(const Scenario& scenario,
                                                 prng::Xoshiro256& rng) {
  std::vector<net::Prefix> sensors;
  sensors.reserve(scenario.slash16_clusters.size());
  for (const Scenario::Slash16Cluster& cluster : scenario.slash16_clusters) {
    const std::uint32_t base24 = cluster.prefix.base().value() >> 8;
    bool placed = false;
    // Random probes first, then a deterministic sweep as fallback.
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const std::uint32_t candidate = base24 + rng.UniformBelow(256);
      if (UsableSensorSlash24(scenario, candidate)) {
        sensors.push_back(Slash24Prefix(candidate));
        placed = true;
      }
    }
    for (std::uint32_t i = 0; i < 256 && !placed; ++i) {
      const std::uint32_t candidate = base24 + i;
      if (UsableSensorSlash24(scenario, candidate)) {
        sensors.push_back(Slash24Prefix(candidate));
        placed = true;
      }
    }
    // A /16 with every /24 occupied simply gets no sensor (cannot happen
    // with the paper's densities).
  }
  return sensors;
}

std::vector<net::Prefix> PlaceRandomSensors(const Scenario& scenario, int count,
                                            prng::Xoshiro256& rng) {
  if (count < 0) throw std::invalid_argument("PlaceRandomSensors: count<0");
  std::vector<net::Prefix> sensors;
  sensors.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::uint32_t> chosen;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 1000ull * static_cast<std::uint64_t>(count) + 1000;
  while (sensors.size() < static_cast<std::size_t>(count)) {
    if (++attempts > max_attempts) {
      throw std::runtime_error("PlaceRandomSensors: space too constrained");
    }
    const std::uint32_t slash24 = rng.UniformBelow(1u << 24);
    if (!UsableSensorSlash24(scenario, slash24)) continue;
    if (!chosen.insert(slash24).second) continue;
    sensors.push_back(Slash24Prefix(slash24));
  }
  return sensors;
}

std::vector<net::Prefix> PlaceSensorsInTopSlash8s(const Scenario& scenario,
                                                  int count, int top_k,
                                                  prng::Xoshiro256& rng) {
  if (count < 0 || top_k <= 0) {
    throw std::invalid_argument("PlaceSensorsInTopSlash8s: bad arguments");
  }
  const auto usable_slash8s = std::min<std::size_t>(
      static_cast<std::size_t>(top_k), scenario.slash8_clusters.size());
  if (usable_slash8s == 0) {
    throw std::invalid_argument("PlaceSensorsInTopSlash8s: no /8 clusters");
  }
  std::vector<net::Prefix> sensors;
  sensors.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::uint32_t> chosen;
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 1000ull * static_cast<std::uint64_t>(count) + 1000;
  while (sensors.size() < static_cast<std::size_t>(count)) {
    if (++attempts > max_attempts) {
      throw std::runtime_error("PlaceSensorsInTopSlash8s: space too constrained");
    }
    const net::Prefix& slash8 = scenario.slash8_clusters[rng.UniformBelow(
        static_cast<std::uint32_t>(usable_slash8s))];
    const std::uint32_t slash24 =
        (slash8.base().value() >> 8) + rng.UniformBelow(1u << 16);
    if (!UsableSensorSlash24(scenario, slash24)) continue;
    if (!chosen.insert(slash24).second) continue;
    sensors.push_back(Slash24Prefix(slash24));
  }
  return sensors;
}

std::vector<net::Prefix> PlaceSensorsAcross192(prng::Xoshiro256& rng) {
  std::vector<net::Prefix> sensors;
  sensors.reserve(255);
  for (int b = 0; b < 256; ++b) {
    if (b == 168) continue;  // 192.168/16 is the private space itself.
    const std::uint32_t slash24 =
        (192u << 16 | static_cast<std::uint32_t>(b) << 8) + rng.UniformBelow(256);
    sensors.push_back(Slash24Prefix(slash24));
  }
  return sensors;
}

telescope::Telescope MakeAlertingTelescope(
    const std::vector<net::Prefix>& blocks, std::uint64_t alert_threshold) {
  telescope::SensorOptions options;
  options.track_unique_sources = false;
  options.track_per_slash24 = false;
  options.alert_threshold = alert_threshold;
  telescope::Telescope telescope{options};
  int index = 0;
  for (const net::Prefix& block : blocks) {
    telescope.AddSensor("S" + std::to_string(index++), block);
  }
  telescope.Build();
  return telescope;
}

}  // namespace hotspots::core
