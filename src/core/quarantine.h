// Quarantine harness — the honeypot experiment of Section 4.3.1.
//
// The paper captured CodeRedII in a VMWare honeypot, gave the infected
// guest first a public and then a private (192.168.0.2) address, let it
// emit ≈7.5 million infection attempts each time, and recorded which
// monitored /24s the probes landed on.  This harness is that experiment:
// run one scanner for a fixed number of probes against a telescope, with no
// epidemic dynamics at all.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.h"
#include "sim/observer.h"
#include "sim/targeting.h"
#include "telescope/telescope.h"

namespace hotspots::core {

struct QuarantineResult {
  std::uint64_t probes_emitted = 0;
  std::uint64_t probes_on_sensors = 0;
};

/// Emits `probes` targets from `scanner` (a quarantined infected host with
/// source address `source`) into `sensors`.  Every probe is treated as
/// routable — the honeypot's uplink is unconstrained, as in the paper's
/// controlled environment.
///
/// When `capture` is non-null it receives the same probe stream through the
/// standard batched ProbeObserver path (time = probe index, src_host =
/// kInvalidHost since there is no population, delivery = kDelivered) — this
/// is how a trace::TraceWriter or any other sink composes with quarantine
/// histogramming without bespoke glue.
QuarantineResult RunQuarantine(sim::HostScanner& scanner, net::Ipv4 source,
                               std::uint64_t probes,
                               telescope::Telescope& sensors,
                               sim::ProbeObserver* capture = nullptr);

}  // namespace hotspots::core
