// The hotspot taxonomy — the paper's conceptual contribution, as types.
//
// "Hotspots are deviations from uniform propagation behavior", decomposed
// into two root-cause classes:
//   * algorithmic factors — host-level, programmatic: hit-lists, flawed or
//     badly seeded PRNGs, deliberate local preference;
//   * environmental factors — network-level: routing & filtering policy,
//     failures & misconfiguration, topology (NAT / private addressing).
// There is no intentionality in the taxonomy: a hotspot can be designed-in
// (hit-lists) or an accident (the Slammer OR bug).
#pragma once

#include <cstdint>
#include <string_view>

#include "analysis/uniformity.h"

namespace hotspots::core {

/// The two root-cause classes.
enum class FactorClass : std::uint8_t {
  kAlgorithmic,
  kEnvironmental,
};

/// The six concrete factors the paper analyzes (three per class).
enum class Factor : std::uint8_t {
  // Algorithmic.
  kHitList,
  kPrngFlaw,
  kLocalPreference,
  // Environmental.
  kRoutingAndFiltering,
  kFailuresAndMisconfiguration,
  kNetworkTopology,
};

[[nodiscard]] constexpr FactorClass ClassOf(Factor factor) {
  switch (factor) {
    case Factor::kHitList:
    case Factor::kPrngFlaw:
    case Factor::kLocalPreference:
      return FactorClass::kAlgorithmic;
    case Factor::kRoutingAndFiltering:
    case Factor::kFailuresAndMisconfiguration:
    case Factor::kNetworkTopology:
      return FactorClass::kEnvironmental;
  }
  return FactorClass::kAlgorithmic;
}

[[nodiscard]] std::string_view ToString(FactorClass factor_class);
[[nodiscard]] std::string_view ToString(Factor factor);

/// A quantified hotspot observation: which factor produced it, where it was
/// measured, and how non-uniform the measurement is.
struct HotspotFinding {
  Factor factor = Factor::kHitList;
  std::string_view scenario;  ///< e.g. "Slammer at IMS blocks".
  analysis::UniformityReport report;

  [[nodiscard]] bool IsHotspot() const { return report.LooksNonUniform(); }
};

}  // namespace hotspots::core
