// Scenario builders: synthetic vulnerable populations.
//
// Section 5.1 fixes the simulation's vulnerable population at the actual
// 134,586 CodeRedII-infected addresses, "clustered in 47 /8 networks", and
// the hit-list experiment implies exactly 4,481 non-empty /16s (the full
// hit-list length).  We cannot have the real address list, so this builder
// synthesizes a population with the same published structure: N hosts,
// clustered into K /8s, spread over M non-empty /16s whose sizes follow a
// heavy-tailed (log-normal) distribution so that greedy hit-lists exhibit
// the paper's coverage curve (a short head covering much of the population
// and a long thin tail).
//
// The builder also places a configurable fraction of hosts behind NATs in
// 192.168.0.0/16 private space (Section 5.3 estimates 15 %), each NATed
// host in its own site with its own public-side gateway address.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/interval_set.h"
#include "net/prefix.h"
#include "prng/xoshiro.h"
#include "sim/population.h"
#include "topology/nat.h"

namespace hotspots::core {

/// How NATed hosts are organized into sites.
enum class NatSiteMode {
  /// All NATed hosts share one 192.168/16 site — models the union of many
  /// private networks as one space, which is what the paper's Section-5.3
  /// simulation needs (NATed hosts must be able to infect each other
  /// through the worm's same-/16 arm for the private epidemic to grow).
  kSharedSite,
  /// One site per host (strict home-NAT model): NATed hosts are only
  /// reachable from themselves, so they stay clean unless seeded.  Used by
  /// the ablation bench to show how strongly the site model matters, and
  /// by the Fig-4a observational experiment (every NAT gets its own public
  /// gateway address, giving distinct observable sources).
  kPerHostSite,
};

/// Parameters of the synthetic clustered population.  Defaults reproduce
/// the paper's CodeRedII population structure.
struct ClusteredPopulationConfig {
  std::uint32_t total_hosts = 134'586;
  int slash8_clusters = 47;
  int nonempty_slash16s = 4481;
  /// Log-normal σ of /16 sizes; 2.0 gives a strong head/tail split.
  double slash16_size_sigma = 2.0;
  /// Fraction of hosts behind 192.168/16 NATs (paper's estimate: 0.15).
  double nat_fraction = 0.0;
  NatSiteMode nat_site_mode = NatSiteMode::kSharedSite;
  std::uint64_t seed = 1;
};

/// A built scenario: population + NAT directory + the structures the
/// experiment drivers need.
struct Scenario {
  sim::Population population;
  topology::NatDirectory nats;
  /// The non-empty public /16s, with per-/16 public host counts, sorted by
  /// descending count (the greedy hit-list is a prefix of this vector).
  struct Slash16Cluster {
    net::Prefix prefix;
    std::uint32_t hosts = 0;
  };
  std::vector<Slash16Cluster> slash16_clusters;
  /// The /8s hosting clusters, by descending public host count.
  std::vector<net::Prefix> slash8_clusters;
  /// Every /24 that contains at least one public host (sensor placement
  /// must avoid these — darknets are unused space).
  std::unordered_set<std::uint32_t> occupied_slash24s;
  std::uint32_t public_hosts = 0;
  std::uint32_t natted_hosts = 0;
};

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  /// Marks address space the population must avoid (sensor blocks).
  void Avoid(const net::Prefix& prefix);

  /// Builds the clustered population.  Throws std::invalid_argument on
  /// inconsistent configs (more /16s than /8s can hold, zero hosts, ...).
  [[nodiscard]] Scenario BuildClustered(const ClusteredPopulationConfig& config);

 private:
  net::IntervalSet avoid_;
  bool avoid_built_ = false;
};

/// Greedy hit-list of `n` /16 prefixes (paper: "each /16 was chosen to
/// cover as many remaining vulnerable hosts as possible").  Returns at most
/// the number of non-empty /16s.
struct HitListSelection {
  std::vector<net::Prefix> prefixes;
  std::uint64_t covered_hosts = 0;
  double coverage = 0.0;  ///< covered / public hosts.
};

[[nodiscard]] HitListSelection GreedyHitList(const Scenario& scenario, int n);

}  // namespace hotspots::core
