#include "core/containment.h"

#include <stdexcept>

#include "telescope/alerting.h"

namespace hotspots::core {

double InfectedFractionAt(const DetectionOutcome& outcome, double time) {
  double fraction = 0.0;
  for (const DetectionPoint& point : outcome.curve) {
    if (point.time > time) break;
    fraction = point.infected_fraction;
  }
  return fraction;
}

std::vector<ContainmentPoint> AnalyzeContainment(
    const DetectionOutcome& outcome, const std::vector<double>& quorums,
    double deployment_delay) {
  if (deployment_delay < 0.0) {
    throw std::invalid_argument("AnalyzeContainment: negative delay");
  }
  std::vector<ContainmentPoint> points;
  points.reserve(quorums.size());
  for (const double quorum : quorums) {
    ContainmentPoint point;
    point.quorum_fraction = quorum;
    point.detection_time = telescope::QuorumDetectionTime(
        outcome.alert_times, outcome.total_sensors, quorum);
    if (point.detection_time) {
      point.response_time = *point.detection_time + deployment_delay;
      point.infected_at_response =
          InfectedFractionAt(outcome, *point.response_time);
    } else {
      // Never contained: the outbreak runs to wherever the run ended.
      point.infected_at_response =
          outcome.curve.empty() ? 0.0
                                : outcome.curve.back().infected_fraction;
    }
    points.push_back(point);
  }
  return points;
}

}  // namespace hotspots::core
