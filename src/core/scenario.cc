#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "net/special_ranges.h"

namespace hotspots::core {
namespace {

/// /8s eligible to host population clusters: unicast space minus private,
/// loopback, the Z/8 darknet (96/8, entirely unused by construction) and
/// 192/8 (reserved for the NAT experiments and the M sensor).
[[nodiscard]] std::vector<std::uint8_t> EligibleSlash8s() {
  std::vector<std::uint8_t> eligible;
  for (int a = 1; a <= 223; ++a) {
    if (a == 10 || a == 96 || a == 127 || a == 172 || a == 192) continue;
    eligible.push_back(static_cast<std::uint8_t>(a));
  }
  return eligible;
}

[[nodiscard]] double SampleStandardNormal(prng::Xoshiro256& rng) {
  const double u1 = rng.NextDouble();
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

void ScenarioBuilder::Avoid(const net::Prefix& prefix) {
  avoid_.Add(prefix);
  avoid_built_ = false;
}

Scenario ScenarioBuilder::BuildClustered(
    const ClusteredPopulationConfig& config) {
  if (config.total_hosts == 0) {
    throw std::invalid_argument("BuildClustered: total_hosts == 0");
  }
  if (config.slash8_clusters <= 0 || config.nonempty_slash16s <= 0) {
    throw std::invalid_argument("BuildClustered: cluster counts must be > 0");
  }
  if (config.nonempty_slash16s > config.slash8_clusters * 256) {
    throw std::invalid_argument("BuildClustered: more /16s than the /8s hold");
  }
  if (config.total_hosts < static_cast<std::uint64_t>(config.nonempty_slash16s)) {
    // Every non-empty /16 holds at least one host, so fewer hosts than /16s
    // is unsatisfiable (and used to spin forever in the rebalancing loop).
    throw std::invalid_argument(
        "BuildClustered: total_hosts < nonempty_slash16s");
  }
  if (config.nat_fraction < 0.0 || config.nat_fraction > 1.0) {
    throw std::invalid_argument("BuildClustered: nat_fraction outside [0,1]");
  }
  if (!avoid_built_) {
    if (!avoid_.empty()) avoid_.Build();
    avoid_built_ = true;
  }

  prng::Xoshiro256 rng{config.seed};
  Scenario scenario;

  // 1. Choose the /8 clusters.
  std::vector<std::uint8_t> slash8_pool = EligibleSlash8s();
  if (static_cast<std::size_t>(config.slash8_clusters) > slash8_pool.size()) {
    throw std::invalid_argument("BuildClustered: not enough eligible /8s");
  }
  for (std::size_t i = slash8_pool.size(); i > 1; --i) {
    std::swap(slash8_pool[i - 1],
              slash8_pool[rng.UniformBelow(static_cast<std::uint32_t>(i))]);
  }
  slash8_pool.resize(static_cast<std::size_t>(config.slash8_clusters));

  // 2. Choose the non-empty /16s: sample without replacement from the
  //    (chosen /8) × (256 /16 indices) grid.
  std::vector<std::uint32_t> slash16_bases;  // /16 index = address >> 16.
  slash16_bases.reserve(
      static_cast<std::size_t>(config.slash8_clusters) * 256);
  for (const std::uint8_t a : slash8_pool) {
    for (int b = 0; b < 256; ++b) {
      slash16_bases.push_back((static_cast<std::uint32_t>(a) << 8) |
                              static_cast<std::uint32_t>(b));
    }
  }
  for (std::size_t i = slash16_bases.size(); i > 1; --i) {
    std::swap(slash16_bases[i - 1],
              slash16_bases[rng.UniformBelow(static_cast<std::uint32_t>(i))]);
  }
  slash16_bases.resize(static_cast<std::size_t>(config.nonempty_slash16s));

  // 3. Heavy-tailed /16 sizes: log-normal weights, proportional allocation,
  //    everyone gets at least one host.
  const std::size_t num16 = slash16_bases.size();
  std::vector<double> weights(num16);
  double weight_total = 0.0;
  for (double& w : weights) {
    w = std::exp(config.slash16_size_sigma * SampleStandardNormal(rng));
    weight_total += w;
  }
  std::vector<std::uint32_t> sizes(num16);
  std::uint64_t allocated = 0;
  constexpr std::uint32_t kSlash16Cap = 60'000;  // Leave headroom in a /16.
  for (std::size_t i = 0; i < num16; ++i) {
    const double share = weights[i] / weight_total;
    auto n = static_cast<std::uint32_t>(
        share * static_cast<double>(config.total_hosts));
    n = std::clamp<std::uint32_t>(n, 1, kSlash16Cap);
    sizes[i] = n;
    allocated += n;
  }
  // Fix the rounding drift by walking the clusters (they are in random
  // order, so this adds no systematic bias).
  std::size_t cursor = 0;
  while (allocated < config.total_hosts) {
    if (sizes[cursor] < kSlash16Cap) {
      ++sizes[cursor];
      ++allocated;
    }
    cursor = (cursor + 1) % num16;
  }
  while (allocated > config.total_hosts) {
    if (sizes[cursor] > 1) {
      --sizes[cursor];
      --allocated;
    }
    cursor = (cursor + 1) % num16;
  }

  // 4. Place hosts.  NAT assignment is drawn per host; NATed hosts move to
  //    192.168/16 private space (one shared site modelling the union of
  //    private networks — see DESIGN.md) and keep their would-have-been
  //    public address as the site-side gateway is not meaningful per host,
  //    so per-host gateways are only used in per-host-site scenarios.
  topology::SiteId shared_site = topology::kPublicSite;
  if (config.nat_fraction > 0.0 &&
      config.nat_site_mode == NatSiteMode::kSharedSite) {
    shared_site = scenario.nats.AddSite(
        net::kPrivate192, net::Ipv4{198, 18, 0, 1});  // Benchmark space.
  }
  std::unordered_set<std::uint32_t> used_private;
  std::unordered_set<std::uint32_t> used_public;

  // Draws a fresh public address inside the /16, outside avoided space.
  const auto draw_public_address = [&](std::uint32_t base16) {
    for (int attempt = 0;; ++attempt) {
      if (attempt > 1 << 20) {
        throw std::runtime_error(
            "BuildClustered: cannot place host; /16 too constrained");
      }
      const std::uint32_t address = (base16 << 16) | rng.UniformBelow(1u << 16);
      if (!avoid_.empty() && avoid_.Contains(net::Ipv4{address})) continue;
      if (!used_public.insert(address).second) continue;
      return address;
    }
  };

  std::vector<std::uint32_t> per8_counts(256, 0);
  for (std::size_t i = 0; i < num16; ++i) {
    const std::uint32_t base16 = slash16_bases[i];
    std::uint32_t placed_public = 0;
    for (std::uint32_t h = 0; h < sizes[i]; ++h) {
      const bool natted = rng.Bernoulli(config.nat_fraction);
      if (natted) {
        if (config.nat_site_mode == NatSiteMode::kSharedSite) {
          // Distinct private address in the one shared 192.168/16 space.
          for (;;) {
            const std::uint32_t offset = rng.UniformBelow(1u << 16);
            const std::uint32_t address =
                net::kPrivate192.base().value() | offset;
            if (used_private.insert(address).second) {
              scenario.population.AddHost(net::Ipv4{address}, shared_site);
              ++scenario.natted_hosts;
              break;
            }
          }
        } else {
          // One site per host: the gateway takes the public address the
          // host would have occupied; the host sits at a typical private
          // address behind it.
          const std::uint32_t gateway = draw_public_address(base16);
          const topology::SiteId site =
              scenario.nats.AddSite(net::kPrivate192, net::Ipv4{gateway});
          const std::uint32_t address =
              net::kPrivate192.base().value() | (rng.UniformBelow(1u << 16));
          scenario.population.AddHost(net::Ipv4{address}, site);
          ++scenario.natted_hosts;
        }
        continue;
      }
      const std::uint32_t address = draw_public_address(base16);
      scenario.population.AddHost(net::Ipv4{address});
      scenario.occupied_slash24s.insert(address >> 8);
      ++scenario.public_hosts;
      ++placed_public;
    }
    if (placed_public > 0) {
      scenario.slash16_clusters.push_back(Scenario::Slash16Cluster{
          net::Prefix{net::Ipv4{base16 << 16}, 16}, placed_public});
      per8_counts[base16 >> 8] += placed_public;
    }
  }

  std::sort(scenario.slash16_clusters.begin(), scenario.slash16_clusters.end(),
            [](const Scenario::Slash16Cluster& a,
               const Scenario::Slash16Cluster& b) {
              if (a.hosts != b.hosts) return a.hosts > b.hosts;
              return a.prefix.base() < b.prefix.base();
            });

  std::vector<std::pair<std::uint32_t, std::uint8_t>> per8;
  for (int a = 0; a < 256; ++a) {
    if (per8_counts[static_cast<std::size_t>(a)] > 0) {
      per8.emplace_back(per8_counts[static_cast<std::size_t>(a)],
                        static_cast<std::uint8_t>(a));
    }
  }
  std::sort(per8.begin(), per8.end(), std::greater<>());
  for (const auto& [count, a] : per8) {
    scenario.slash8_clusters.push_back(
        net::Prefix{net::Ipv4{a, 0, 0, 0}, 8});
  }

  scenario.population.Build(nullptr);
  return scenario;
}

HitListSelection GreedyHitList(const Scenario& scenario, int n) {
  if (n < 0) throw std::invalid_argument("GreedyHitList: n < 0");
  HitListSelection selection;
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(n),
                                          scenario.slash16_clusters.size());
  selection.prefixes.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    selection.prefixes.push_back(scenario.slash16_clusters[i].prefix);
    selection.covered_hosts += scenario.slash16_clusters[i].hosts;
  }
  selection.coverage =
      scenario.public_hosts == 0
          ? 0.0
          : static_cast<double>(selection.covered_hosts) /
                static_cast<double>(scenario.public_hosts);
  return selection;
}

}  // namespace hotspots::core
