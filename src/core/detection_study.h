// Detection-study driver: outbreak + sensor fleet + joined curves.
//
// Runs one simulated outbreak against one sensor placement and produces the
// joined time series the Section-5 figures plot: infected fraction and
// alerted-sensor fraction over time, plus the summary statistic the paper
// leans on ("only X % of sensors have alerted when Y % of the vulnerable
// population is infected").
#pragma once

#include <string>
#include <vector>

#include "core/scenario.h"
#include "fault/schedule.h"
#include "sim/engine.h"
#include "sim/study.h"
#include "telescope/telescope.h"

namespace hotspots::core {

struct DetectionStudyConfig {
  sim::EngineConfig engine;
  /// Alert after this many worm payloads at a sensor (paper: 5).
  std::uint64_t alert_threshold = 5;
  /// Random initial infections (paper: 25).
  int seed_infections = 25;
  /// Optional fault schedule (not owned; nullptr or an empty schedule run
  /// bit-identically to the fault-free study): sensor outages are applied
  /// to the fleet, delivery faults are hooked into the engine, and outage
  /// metrics are folded into the registry.
  const fault::FaultSchedule* faults = nullptr;
};

struct DetectionPoint {
  double time = 0.0;
  double infected_fraction = 0.0;
  double alerted_fraction = 0.0;
};

struct DetectionOutcome {
  sim::RunResult run;
  std::size_t total_sensors = 0;
  std::size_t alerted_sensors = 0;
  std::vector<double> alert_times;
  std::vector<DetectionPoint> curve;
  /// Probes that landed on a sensor while it was down (0 without faults).
  std::uint64_t outage_missed_probes = 0;

  /// Fraction of sensors alerted at the first sample where the infected
  /// fraction reaches `infected_fraction` (1.0 if never reached → final).
  [[nodiscard]] double AlertedFractionWhenInfected(
      double infected_fraction) const;
};

/// Runs the study.  Resets every host to vulnerable first, so a Scenario
/// can be reused across runs with different worms/sensor placements.
[[nodiscard]] DetectionOutcome RunDetectionStudy(
    Scenario& scenario, const sim::Worm& worm,
    const std::vector<net::Prefix>& sensor_blocks,
    const DetectionStudyConfig& config);

// ---------------------------------------------------------------------------
// Monte-Carlo detection studies (many independent outbreak trials).

/// A Monte-Carlo study: `trials` independent outbreaks of the same worm
/// against the same sensor placement, differing only in their per-trial
/// seeds (derived from `master_seed` with SplitMix64, by trial index).
struct MonteCarloStudyConfig {
  DetectionStudyConfig study;
  int trials = 8;
  /// Seed of the whole study; the per-trial engine seed (which drives seed
  /// placement, scanner entropy and loss draws) is sim::TrialSeeds()[i].
  std::uint64_t master_seed = 0x5EED;
  /// Worker threads (0 = HOTSPOTS_THREADS env, else hardware_concurrency).
  int threads = 0;
  /// Sweep-point label recorded in the telemetry's segment list so merged
  /// telemetry stays attributable (see sim::StudySegment).
  std::string label;
  /// Quantiles reported for every summarized metric.
  std::vector<double> quantiles = {0.10, 0.50, 0.90};
  /// Infected fractions K for the time-to-K% summaries.
  std::vector<double> time_to_fractions = {0.25, 0.50};

  // -- Trial isolation (sim::StudyOptions pass-through; defaults keep the
  // legacy fail-fast behaviour) ------------------------------------------
  int max_attempts = 1;
  double retry_backoff_seconds = 0.0;
  bool quarantine_failures = false;
};

/// Order-insensitive aggregates of a Monte-Carlo detection study.  The
/// per-trial outcomes are kept (by trial index) so callers can derive any
/// further statistic; the summaries below are the ones the figure benches
/// print.
struct MonteCarloDetectionSummary {
  std::vector<DetectionOutcome> trials;  ///< By trial index.
  sim::StudyTelemetry telemetry;
  std::uint64_t total_probes = 0;  ///< Across completed trials.
  /// Trials quarantined after exhausting their retry budget.  Their slots
  /// in `trials` are default-constructed and every aggregate below
  /// excludes them (stats.count reports completed trials only).
  int lost_trials = 0;

  sim::SummaryStats infected_fraction;  ///< Final infected fraction.
  sim::SummaryStats alerted_fraction;   ///< Final alerted-sensor fraction.
  sim::SummaryStats alerted_sensors;    ///< Final alerted-sensor count.
  sim::SummaryStats first_alert_time;   ///< Earliest sensor alert per trial.
  /// (K, stats of time-to-K%-infected); trials that never reach K are
  /// excluded (stats.count tells how many did).
  std::vector<std::pair<double, sim::SummaryStats>> time_to_infected;

  /// Mean detection curve across trials, evaluated at `time` by staircase
  /// interpolation of each trial's curve.
  [[nodiscard]] DetectionPoint MeanCurveAt(double time) const;
  /// Number of trials whose quorum detector (fraction of all sensors)
  /// would ever fire.
  [[nodiscard]] int TrialsWithQuorum(double quorum_fraction) const;
};

/// Runs `config.trials` independent RunDetectionStudy() trials across a
/// thread pool (sim::RunTrials).  Each trial copies `base` — population,
/// NAT directory and indexes — so trials share nothing mutable, and the
/// aggregates are bit-identical for a given master seed at any thread
/// count.
[[nodiscard]] MonteCarloDetectionSummary RunDetectionStudyMonteCarlo(
    const Scenario& base, const sim::Worm& worm,
    const std::vector<net::Prefix>& sensor_blocks,
    const MonteCarloStudyConfig& config);

}  // namespace hotspots::core
