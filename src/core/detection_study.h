// Detection-study driver: outbreak + sensor fleet + joined curves.
//
// Runs one simulated outbreak against one sensor placement and produces the
// joined time series the Section-5 figures plot: infected fraction and
// alerted-sensor fraction over time, plus the summary statistic the paper
// leans on ("only X % of sensors have alerted when Y % of the vulnerable
// population is infected").
#pragma once

#include <string>
#include <vector>

#include "core/scenario.h"
#include "sim/engine.h"
#include "telescope/telescope.h"

namespace hotspots::core {

struct DetectionStudyConfig {
  sim::EngineConfig engine;
  /// Alert after this many worm payloads at a sensor (paper: 5).
  std::uint64_t alert_threshold = 5;
  /// Random initial infections (paper: 25).
  int seed_infections = 25;
};

struct DetectionPoint {
  double time = 0.0;
  double infected_fraction = 0.0;
  double alerted_fraction = 0.0;
};

struct DetectionOutcome {
  sim::RunResult run;
  std::size_t total_sensors = 0;
  std::size_t alerted_sensors = 0;
  std::vector<double> alert_times;
  std::vector<DetectionPoint> curve;

  /// Fraction of sensors alerted at the first sample where the infected
  /// fraction reaches `infected_fraction` (1.0 if never reached → final).
  [[nodiscard]] double AlertedFractionWhenInfected(
      double infected_fraction) const;
};

/// Runs the study.  Resets every host to vulnerable first, so a Scenario
/// can be reused across runs with different worms/sensor placements.
[[nodiscard]] DetectionOutcome RunDetectionStudy(
    Scenario& scenario, const sim::Worm& worm,
    const std::vector<net::Prefix>& sensor_blocks,
    const DetectionStudyConfig& config);

}  // namespace hotspots::core
