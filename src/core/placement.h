// Sensor placement strategies (Section 5).
//
// The detection experiments differ only in where the /24 darknet sensors
// sit:
//   * Figure 5b — one /24 sensor in each of the 4,481 /16s with at least
//     one vulnerable host;
//   * Figure 5c, run 1 — 10,000 /24 sensors placed uniformly at random;
//   * Figure 5c, run 2 — 10,000 /24 sensors placed randomly inside the top
//     20 /8s by vulnerable-host count;
//   * Figure 5c, run 3 — 255 sensors, one per /16 of 192.0.0.0/8, skipping
//     192.168.0.0/16.
// Sensors are darknets, so every strategy places them in /24s that contain
// no host.
#pragma once

#include <string>
#include <vector>

#include "core/scenario.h"
#include "net/prefix.h"
#include "prng/xoshiro.h"
#include "telescope/telescope.h"

namespace hotspots::core {

/// One /24 sensor per non-empty /16 of the scenario (Fig 5b).
[[nodiscard]] std::vector<net::Prefix> PlaceSensorPerCluster16(
    const Scenario& scenario, prng::Xoshiro256& rng);

/// `count` random /24 sensors anywhere in targetable unicast space
/// (Fig 5c run 1).
[[nodiscard]] std::vector<net::Prefix> PlaceRandomSensors(
    const Scenario& scenario, int count, prng::Xoshiro256& rng);

/// `count` random /24 sensors inside the scenario's top `top_k` /8s
/// (Fig 5c run 2).
[[nodiscard]] std::vector<net::Prefix> PlaceSensorsInTopSlash8s(
    const Scenario& scenario, int count, int top_k, prng::Xoshiro256& rng);

/// One /24 sensor in every /16 of 192.0.0.0/8 except 192.168.0.0/16 —
/// 255 sensors (Fig 5c run 3).
[[nodiscard]] std::vector<net::Prefix> PlaceSensorsAcross192(
    prng::Xoshiro256& rng);

/// Loads `blocks` into a telescope configured for alerting with
/// `alert_threshold` payloads, and builds it.
[[nodiscard]] telescope::Telescope MakeAlertingTelescope(
    const std::vector<net::Prefix>& blocks, std::uint64_t alert_threshold);

}  // namespace hotspots::core
