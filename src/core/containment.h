// Containment analysis — what detection delay costs.
//
// The paper's Section 5.3 punchline is operational: "After 11 minutes the
// worm has already infected more than 50% of the vulnerable population
// making global containment difficult or impossible."  This module turns a
// DetectionOutcome into that statement for any response policy: given a
// quorum fraction (how much of the sensor fleet must agree before a global
// response fires) and a deployment delay (signature generation and filter
// push), it reports when the response lands and how much of the population
// was already infected — the containment window analysis of the paper's
// cited Internet-quarantine work.
#pragma once

#include <optional>
#include <vector>

#include "core/detection_study.h"

namespace hotspots::core {

/// One row of the containment analysis.
struct ContainmentPoint {
  double quorum_fraction = 0.0;
  /// When the quorum fired (nullopt: never — containment impossible).
  std::optional<double> detection_time;
  /// When the response would be active (detection + deployment delay).
  std::optional<double> response_time;
  /// Infected fraction of the eligible population at response time (at the
  /// end of the run when the response never fires).
  double infected_at_response = 0.0;
};

/// Evaluates containment for each quorum fraction.  `deployment_delay` is
/// the time from global detection to filters being effective.
[[nodiscard]] std::vector<ContainmentPoint> AnalyzeContainment(
    const DetectionOutcome& outcome, const std::vector<double>& quorums,
    double deployment_delay);

/// The infected fraction at simulated time `time` (last sample ≤ time; the
/// final value when the run ended earlier).
[[nodiscard]] double InfectedFractionAt(const DetectionOutcome& outcome,
                                        double time);

}  // namespace hotspots::core
