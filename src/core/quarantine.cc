#include "core/quarantine.h"

#include "prng/xoshiro.h"

namespace hotspots::core {

QuarantineResult RunQuarantine(sim::HostScanner& scanner, net::Ipv4 source,
                               std::uint64_t probes,
                               telescope::Telescope& sensors,
                               sim::ProbeObserver* capture) {
  QuarantineResult result;
  prng::Xoshiro256 rng{0xC0DEull};
  const std::uint64_t before = [&] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      total += sensors.sensor(static_cast<int>(i)).probe_count();
    }
    return total;
  }();
  std::vector<sim::ProbeEvent> batch;
  constexpr std::size_t kBatchCapacity = 1024;
  if (capture != nullptr) {
    capture->OnAttach();
    batch.reserve(kBatchCapacity);
  }
  for (std::uint64_t i = 0; i < probes; ++i) {
    const net::Ipv4 target = scanner.NextTarget(rng);
    sensors.Observe(static_cast<double>(i), source, target);
    if (capture != nullptr) {
      batch.push_back(sim::ProbeEvent{.time = static_cast<double>(i),
                                      .src_host = sim::kInvalidHost,
                                      .src_address = source,
                                      .dst = target,
                                      .delivery = topology::Delivery::kDelivered});
      if (batch.size() == kBatchCapacity) {
        capture->OnProbeBatch(batch);
        batch.clear();
      }
    }
    ++result.probes_emitted;
  }
  if (capture != nullptr && !batch.empty()) capture->OnProbeBatch(batch);
  std::uint64_t after = 0;
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    after += sensors.sensor(static_cast<int>(i)).probe_count();
  }
  result.probes_on_sensors = after - before;
  return result;
}

}  // namespace hotspots::core
