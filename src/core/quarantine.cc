#include "core/quarantine.h"

#include "prng/xoshiro.h"

namespace hotspots::core {

QuarantineResult RunQuarantine(sim::HostScanner& scanner, net::Ipv4 source,
                               std::uint64_t probes,
                               telescope::Telescope& sensors) {
  QuarantineResult result;
  prng::Xoshiro256 rng{0xC0DEull};
  const std::uint64_t before = [&] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      total += sensors.sensor(static_cast<int>(i)).probe_count();
    }
    return total;
  }();
  for (std::uint64_t i = 0; i < probes; ++i) {
    const net::Ipv4 target = scanner.NextTarget(rng);
    sensors.Observe(static_cast<double>(i), source, target);
    ++result.probes_emitted;
  }
  std::uint64_t after = 0;
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    after += sensors.sensor(static_cast<int>(i)).probe_count();
  }
  result.probes_on_sensors = after - before;
  return result;
}

}  // namespace hotspots::core
