#include "core/hotspot.h"

namespace hotspots::core {

std::string_view ToString(FactorClass factor_class) {
  switch (factor_class) {
    case FactorClass::kAlgorithmic: return "algorithmic";
    case FactorClass::kEnvironmental: return "environmental";
  }
  return "unknown";
}

std::string_view ToString(Factor factor) {
  switch (factor) {
    case Factor::kHitList: return "hit-list";
    case Factor::kPrngFlaw: return "prng-flaw";
    case Factor::kLocalPreference: return "local-preference";
    case Factor::kRoutingAndFiltering: return "routing-and-filtering";
    case Factor::kFailuresAndMisconfiguration:
      return "failures-and-misconfiguration";
    case Factor::kNetworkTopology: return "network-topology";
  }
  return "unknown";
}

}  // namespace hotspots::core
