#include "core/detection_study.h"

#include <algorithm>
#include <stdexcept>

#include "core/placement.h"
#include "topology/reachability.h"

namespace hotspots::core {

double DetectionOutcome::AlertedFractionWhenInfected(
    double infected_fraction) const {
  for (const DetectionPoint& point : curve) {
    if (point.infected_fraction >= infected_fraction) {
      return point.alerted_fraction;
    }
  }
  return curve.empty() ? 0.0 : curve.back().alerted_fraction;
}

DetectionOutcome RunDetectionStudy(Scenario& scenario, const sim::Worm& worm,
                                   const std::vector<net::Prefix>& sensor_blocks,
                                   const DetectionStudyConfig& config) {
  if (sensor_blocks.empty()) {
    throw std::invalid_argument("RunDetectionStudy: no sensors");
  }
  scenario.population.ResetAllToVulnerable();

  telescope::Telescope sensors =
      MakeAlertingTelescope(sensor_blocks, config.alert_threshold);
  // The fleet is IMS-style (active responders), but declare the threat's
  // transport anyway so passive-sensor configurations behave correctly.
  sensors.SetThreatRequiresHandshake(worm.requires_handshake());

  const topology::Reachability reachability{
      nullptr, scenario.nats.size() > 0 ? &scenario.nats : nullptr, nullptr,
      0.0};
  sim::Engine engine{scenario.population, worm, reachability,
                     scenario.nats.size() > 0 ? &scenario.nats : nullptr,
                     config.engine};
  engine.SeedRandomInfections(config.seed_infections);

  DetectionOutcome outcome;
  outcome.run = engine.Run(sensors);
  outcome.total_sensors = sensors.size();
  outcome.alerted_sensors = sensors.AlertedCount();
  outcome.alert_times = sensors.AlertTimes();
  std::sort(outcome.alert_times.begin(), outcome.alert_times.end());

  outcome.curve.reserve(outcome.run.series.size());
  const double eligible =
      static_cast<double>(outcome.run.eligible_population);
  for (const sim::SamplePoint& sample : outcome.run.series) {
    DetectionPoint point;
    point.time = sample.time;
    point.infected_fraction =
        eligible == 0 ? 0.0 : static_cast<double>(sample.infected) / eligible;
    const auto alerted = static_cast<std::size_t>(
        std::upper_bound(outcome.alert_times.begin(),
                         outcome.alert_times.end(), sample.time) -
        outcome.alert_times.begin());
    point.alerted_fraction = static_cast<double>(alerted) /
                             static_cast<double>(outcome.total_sensors);
    outcome.curve.push_back(point);
  }
  return outcome;
}

}  // namespace hotspots::core
