#include "core/detection_study.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <optional>

#include "core/placement.h"
#include "detect/alert_delay.h"
#include "fault/delivery.h"
#include "fault/inject.h"
#include "obs/metrics.h"
#include "topology/reachability.h"

namespace hotspots::core {

double DetectionOutcome::AlertedFractionWhenInfected(
    double infected_fraction) const {
  for (const DetectionPoint& point : curve) {
    if (point.infected_fraction >= infected_fraction) {
      return point.alerted_fraction;
    }
  }
  return curve.empty() ? 0.0 : curve.back().alerted_fraction;
}

DetectionOutcome RunDetectionStudy(Scenario& scenario, const sim::Worm& worm,
                                   const std::vector<net::Prefix>& sensor_blocks,
                                   const DetectionStudyConfig& config) {
  if (sensor_blocks.empty()) {
    throw std::invalid_argument("RunDetectionStudy: no sensors");
  }
  scenario.population.ResetAllToVulnerable();

  telescope::Telescope sensors =
      MakeAlertingTelescope(sensor_blocks, config.alert_threshold);
  // The fleet is IMS-style (active responders), but declare the threat's
  // transport anyway so passive-sensor configurations behave correctly.
  sensors.SetThreatRequiresHandshake(worm.requires_handshake());

  // Fault layer: outage windows attach to the fleet, delivery faults hook
  // into the engine.  A nullptr/empty schedule applies nothing, leaving
  // the run bit-identical to the fault-free path.
  std::optional<fault::DeliveryFaults> delivery_faults;
  if (config.faults != nullptr) {
    fault::ApplySensorOutages(*config.faults, sensors);
    if (config.faults->HasDeliveryFaults()) {
      delivery_faults.emplace(*config.faults);
    }
  }

  const topology::Reachability reachability{
      nullptr, scenario.nats.size() > 0 ? &scenario.nats : nullptr, nullptr,
      0.0};
  sim::Engine engine{scenario.population, worm, reachability,
                     scenario.nats.size() > 0 ? &scenario.nats : nullptr,
                     config.engine};
  if (delivery_faults) engine.SetDeliveryFaults(&*delivery_faults);
  engine.SeedRandomInfections(config.seed_infections);

  DetectionOutcome outcome;
  outcome.run = engine.Run(sensors);
  outcome.outage_missed_probes = sensors.OutageMissedProbes();
  if (config.faults != nullptr) {
    auto& registry = obs::Registry::Global();
    if (outcome.outage_missed_probes > 0) {
      registry.GetCounter("telescope.outage.missed_probes")
          .Add(outcome.outage_missed_probes);
    }
    registry.GetGauge("telescope.outage.sensors")
        .SetMax(static_cast<double>(sensors.SensorsWithOutages()));
    if (delivery_faults) delivery_faults->PublishMetrics();
  }
  outcome.total_sensors = sensors.size();
  outcome.alerted_sensors = sensors.AlertedCount();
  if (config.faults != nullptr && config.faults->alert_delay.Active()) {
    // Detector-side reporting lag: each sensed alert is delivered at
    // sense + delay(sensor), with the delay a pure function of
    // (schedule seed, sensor index) — so first-alert and quorum times
    // reflect *reported* visibility, not instantaneous sensing.
    detect::AlertDelayQueue delay{config.faults->alert_delay.min_delay,
                                  config.faults->alert_delay.max_delay,
                                  config.faults->seed};
    for (int i = 0; i < static_cast<int>(sensors.size()); ++i) {
      const auto& sensed = sensors.sensor(i).alert_time();
      if (sensed.has_value()) delay.Push(i, *sensed);
    }
    outcome.alert_times = delay.DrainSorted();
  } else {
    outcome.alert_times = sensors.AlertTimes();
    std::sort(outcome.alert_times.begin(), outcome.alert_times.end());
  }

  outcome.curve.reserve(outcome.run.series.size());
  const double eligible =
      static_cast<double>(outcome.run.eligible_population);
  for (const sim::SamplePoint& sample : outcome.run.series) {
    DetectionPoint point;
    point.time = sample.time;
    point.infected_fraction =
        eligible == 0 ? 0.0 : static_cast<double>(sample.infected) / eligible;
    const auto alerted = static_cast<std::size_t>(
        std::upper_bound(outcome.alert_times.begin(),
                         outcome.alert_times.end(), sample.time) -
        outcome.alert_times.begin());
    point.alerted_fraction = static_cast<double>(alerted) /
                             static_cast<double>(outcome.total_sensors);
    outcome.curve.push_back(point);
  }
  return outcome;
}

namespace {

/// Staircase lookup: the last curve point at or before `time`.
DetectionPoint CurveAt(const std::vector<DetectionPoint>& curve, double time) {
  DetectionPoint value;
  value.time = time;
  for (const DetectionPoint& point : curve) {
    if (point.time > time) break;
    value.infected_fraction = point.infected_fraction;
    value.alerted_fraction = point.alerted_fraction;
  }
  return value;
}

}  // namespace

DetectionPoint MonteCarloDetectionSummary::MeanCurveAt(double time) const {
  DetectionPoint mean;
  mean.time = time;
  int completed = 0;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (telemetry.TrialQuarantined(static_cast<int>(i))) continue;
    const DetectionPoint point = CurveAt(trials[i].curve, time);
    mean.infected_fraction += point.infected_fraction;
    mean.alerted_fraction += point.alerted_fraction;
    ++completed;
  }
  if (completed == 0) return mean;
  mean.infected_fraction /= static_cast<double>(completed);
  mean.alerted_fraction /= static_cast<double>(completed);
  return mean;
}

int MonteCarloDetectionSummary::TrialsWithQuorum(
    double quorum_fraction) const {
  int fired = 0;
  for (const DetectionOutcome& trial : trials) {
    const auto needed = static_cast<std::size_t>(
        std::ceil(quorum_fraction * static_cast<double>(trial.total_sensors)));
    if (trial.alert_times.size() >= needed && needed > 0) ++fired;
  }
  return fired;
}

MonteCarloDetectionSummary RunDetectionStudyMonteCarlo(
    const Scenario& base, const sim::Worm& worm,
    const std::vector<net::Prefix>& sensor_blocks,
    const MonteCarloStudyConfig& config) {
  sim::StudyOptions options;
  options.threads = config.threads;
  options.master_seed = config.master_seed;
  options.label = config.label;
  options.max_attempts = config.max_attempts;
  options.retry_backoff_seconds = config.retry_backoff_seconds;
  options.quarantine_failures = config.quarantine_failures;

  MonteCarloDetectionSummary summary;
  summary.trials.resize(static_cast<std::size_t>(config.trials));
  summary.telemetry = sim::RunTrials(
      options, config.trials, [&](int trial, std::uint64_t seed) {
        // Fault-injected trial kills fire before any simulation work, on
        // the attempt's seed — so a killed attempt can pass on retry.
        if (config.study.faults != nullptr) {
          fault::MaybeKillTrial(*config.study.faults, trial, seed);
        }
        // Each trial owns a full copy of the scenario: RunDetectionStudy
        // resets and mutates host states, so nothing mutable is shared
        // between worker threads.
        Scenario scenario = base;
        DetectionStudyConfig study = config.study;
        study.engine.seed = seed;
        summary.trials[static_cast<std::size_t>(trial)] =
            RunDetectionStudy(scenario, worm, sensor_blocks, study);
      });
  summary.lost_trials = summary.telemetry.quarantined_trials;

  // Quarantined trials hold default-constructed outcomes: they are skipped
  // here by pushing NaN, which Summarize() excludes — stats.count is the
  // completed-trial count, the explicit partial-aggregate accounting.
  std::vector<double> infected;
  std::vector<double> alerted_fraction;
  std::vector<double> alerted_count;
  std::vector<double> first_alert;
  const auto never = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < summary.trials.size(); ++i) {
    const DetectionOutcome& trial = summary.trials[i];
    if (summary.telemetry.TrialQuarantined(static_cast<int>(i))) {
      infected.push_back(never);
      alerted_count.push_back(never);
      alerted_fraction.push_back(never);
      first_alert.push_back(never);
      continue;
    }
    summary.total_probes += trial.run.total_probes;
    infected.push_back(trial.run.FinalInfectedFraction());
    alerted_count.push_back(static_cast<double>(trial.alerted_sensors));
    alerted_fraction.push_back(
        trial.total_sensors == 0
            ? 0.0
            : static_cast<double>(trial.alerted_sensors) /
                  static_cast<double>(trial.total_sensors));
    first_alert.push_back(trial.alert_times.empty() ? never
                                                    : trial.alert_times.front());
  }
  summary.infected_fraction = sim::Summarize(infected, config.quantiles);
  summary.alerted_fraction =
      sim::Summarize(alerted_fraction, config.quantiles);
  summary.alerted_sensors = sim::Summarize(alerted_count, config.quantiles);
  summary.first_alert_time = sim::Summarize(first_alert, config.quantiles);
  for (const double fraction : config.time_to_fractions) {
    std::vector<double> times;
    times.reserve(summary.trials.size());
    for (std::size_t i = 0; i < summary.trials.size(); ++i) {
      times.push_back(summary.telemetry.TrialQuarantined(static_cast<int>(i))
                          ? never
                          : sim::TimeToInfectedFraction(
                                summary.trials[i].run, fraction));
    }
    summary.time_to_infected.emplace_back(
        fraction, sim::Summarize(times, config.quantiles));
  }
  return summary;
}

}  // namespace hotspots::core
