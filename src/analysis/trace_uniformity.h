// Offline uniformity analysis over captured probe traces.
//
// The live pipeline histograms probes per monitored /24 as the engine runs;
// this module computes the same per-block histogram and UniformityReport
// from a `hotspots.trace.v1` file instead, so a single captured outbreak
// can be re-binned against any sensor layout after the fact — no re-run,
// no engine.  The histogrammer is itself a sim::ProbeObserver, so it also
// attaches to live runs (or a tee) when the trace detour is not wanted;
// live and replayed streams produce identical histograms by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/uniformity.h"
#include "net/interval_set.h"
#include "net/prefix.h"
#include "sim/observer.h"

namespace hotspots::analysis {

/// What to count per block.
struct BlockHistogramOptions {
  /// Count only probes with delivery == kDelivered (an on-path sensor sees
  /// everything routable; an end-host sensor only what arrives).  Off by
  /// default: the paper's telescope figures count raw arrivals at monitored
  /// space, which the reachability pipeline has already filtered.
  bool delivered_only = false;
  /// Count distinct source addresses per block instead of raw probes
  /// (the paper's Figure 1/2 metric).
  bool unique_sources = false;
};

/// Histograms the probe stream into per-prefix bins (typically /24s).
class BlockHistogramObserver final : public sim::ProbeObserver {
 public:
  /// One bin per entry of `blocks`; bins keep the given order.
  explicit BlockHistogramObserver(std::span<const net::Prefix> blocks,
                                  BlockHistogramOptions options = {});

  void OnProbe(const sim::ProbeEvent& event) override;

  /// Per-block counts, in constructor order.  With unique_sources set, the
  /// counts are distinct sources per block.
  [[nodiscard]] std::vector<std::uint64_t> Counts() const;

  [[nodiscard]] std::uint64_t probes_seen() const { return probes_seen_; }
  [[nodiscard]] std::uint64_t probes_binned() const { return probes_binned_; }

 private:
  net::IntervalMap<std::size_t> block_index_;
  BlockHistogramOptions options_;
  std::vector<std::uint64_t> probe_counts_;
  std::vector<std::unordered_set<std::uint32_t>> sources_;
  std::uint64_t probes_seen_ = 0;
  std::uint64_t probes_binned_ = 0;
};

/// Result of analyzing one trace against a block layout.
struct TraceUniformity {
  std::vector<std::uint64_t> per_block;  ///< One count per input block.
  UniformityReport report;               ///< AnalyzeUniformity(per_block).
  std::uint64_t records = 0;             ///< Records replayed from the trace.
  std::uint64_t binned = 0;              ///< Records that landed in a block.
};

/// Replays `path` through a BlockHistogramObserver over `blocks` and
/// analyzes the resulting histogram.  Throws trace::TraceError on a
/// malformed file and std::invalid_argument if `blocks` is empty.
[[nodiscard]] TraceUniformity AnalyzeTraceUniformity(
    const std::string& path, std::span<const net::Prefix> blocks,
    BlockHistogramOptions options = {});

}  // namespace hotspots::analysis
