#include "analysis/trace_uniformity.h"

#include <stdexcept>

#include "topology/reachability.h"
#include "trace/replay.h"

namespace hotspots::analysis {

BlockHistogramObserver::BlockHistogramObserver(
    std::span<const net::Prefix> blocks, BlockHistogramOptions options)
    : options_(options),
      probe_counts_(blocks.size(), 0),
      sources_(options.unique_sources ? blocks.size() : 0) {
  if (blocks.empty()) {
    throw std::invalid_argument("BlockHistogramObserver: no blocks");
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    block_index_.Add(blocks[i], i);
  }
  block_index_.Build();  // Throws on overlapping blocks.
}

void BlockHistogramObserver::OnProbe(const sim::ProbeEvent& event) {
  ++probes_seen_;
  if (options_.delivered_only &&
      event.delivery != topology::Delivery::kDelivered) {
    return;
  }
  const std::size_t* bin = block_index_.Lookup(event.dst);
  if (bin == nullptr) return;
  ++probes_binned_;
  ++probe_counts_[*bin];
  if (options_.unique_sources) {
    sources_[*bin].insert(event.src_address.value());
  }
}

std::vector<std::uint64_t> BlockHistogramObserver::Counts() const {
  if (!options_.unique_sources) return probe_counts_;
  std::vector<std::uint64_t> counts(sources_.size(), 0);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    counts[i] = sources_[i].size();
  }
  return counts;
}

TraceUniformity AnalyzeTraceUniformity(const std::string& path,
                                       std::span<const net::Prefix> blocks,
                                       BlockHistogramOptions options) {
  BlockHistogramObserver histogram{blocks, options};
  const trace::ReplaySummary summary = trace::ReplayFile(path, histogram);
  TraceUniformity result;
  result.per_block = histogram.Counts();
  result.report = AnalyzeUniformity(result.per_block);
  result.records = summary.records;
  result.binned = histogram.probes_binned();
  return result;
}

}  // namespace hotspots::analysis
