#include "analysis/seed_forensics.h"

#include <algorithm>
#include <stdexcept>

#include "worms/blaster.h"

namespace hotspots::analysis {
namespace {

constexpr std::uint32_t kSlash24Space = 1u << 24;

/// Forward distance from `from` to `to` in /24-index space (wrapping).
[[nodiscard]] std::uint32_t ForwardDistance(std::uint32_t from,
                                            std::uint32_t to) {
  return (to - from) & (kSlash24Space - 1);
}

}  // namespace

std::vector<SeedCandidate> FindSeedsCovering(net::Ipv4 target,
                                             const SeedSearchConfig& config) {
  return FindSeedsCoveringBlock(net::Prefix{target, 32}, config);
}

std::vector<SeedCandidate> FindSeedsCoveringBlock(
    const net::Prefix& block, const SeedSearchConfig& config) {
  if (config.tick_step == 0) {
    throw std::invalid_argument("SeedSearchConfig: tick_step must be > 0");
  }
  if (config.max_tick < config.min_tick) {
    throw std::invalid_argument("SeedSearchConfig: max_tick < min_tick");
  }
  const std::uint32_t first24 = block.first().Slash24();
  const std::uint32_t last24 = block.last().Slash24();
  const std::uint32_t block_span = last24 - first24;  // Blocks never wrap.

  std::vector<SeedCandidate> candidates;
  for (std::uint64_t tick = config.min_tick; tick <= config.max_tick;
       tick += config.tick_step) {
    const net::Ipv4 start = worms::BlasterWorm::StartAddressForSeed(
        static_cast<std::uint32_t>(tick));
    const std::uint32_t start24 = start.Slash24();
    // The sweep covers /24 indices [start24, start24 + sweep).  It reaches
    // the block iff the forward distance to the block's *last* /24 is less
    // than sweep + 0 — i.e. distance to first24 < sweep, or the start is
    // inside the block itself.
    const std::uint32_t distance_to_first = ForwardDistance(start24, first24);
    const std::uint32_t distance_to_last = ForwardDistance(start24, last24);
    const bool covers =
        distance_to_first < config.sweep_slash24s ||
        distance_to_last <= block_span;  // Start inside the block.
    if (covers) {
      candidates.push_back(
          SeedCandidate{static_cast<std::uint32_t>(tick), start});
    }
  }
  return candidates;
}

UptimeSummary SummarizeUptimes(const std::vector<SeedCandidate>& candidates) {
  UptimeSummary summary;
  summary.candidates = candidates.size();
  if (candidates.empty()) return summary;
  std::vector<double> uptimes;
  uptimes.reserve(candidates.size());
  for (const SeedCandidate& candidate : candidates) {
    uptimes.push_back(candidate.UptimeSeconds());
  }
  std::sort(uptimes.begin(), uptimes.end());
  summary.min_seconds = uptimes.front();
  summary.max_seconds = uptimes.back();
  summary.median_seconds = uptimes[uptimes.size() / 2];
  return summary;
}

}  // namespace hotspots::analysis
