// Blaster seed forensics: inverting observed hotspots back to PRNG seeds.
//
// The paper's key Blaster result (Section 4.2.2): given the distribution of
// Blaster sources observed per destination /24, map the hot ranges *back*
// to the GetTickCount() values that would have produced starting points
// leading there — and check whether those tick values correspond to
// plausible boot times.  The spike at the I block mapped to a tick of
// ≈2.3 minutes; hot ranges generally mapped to 1–20 minutes (clustered
// around 4–5), while cold ranges mapped to implausible boot times of hours
// to days.
//
// This module brute-forces the seed→start mapping over a tick range and
// answers both directions: seeds→covered /24s and hot-/24→candidate seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace hotspots::analysis {

/// One candidate explanation of a hotspot.
struct SeedCandidate {
  std::uint32_t tick_count = 0;   ///< GetTickCount() at srand().
  net::Ipv4 start_address;        ///< The seed's starting point.
  /// Tick count as wall-clock uptime.
  [[nodiscard]] double UptimeSeconds() const { return tick_count / 1000.0; }
};

/// Search configuration.  The defaults are the paper's: ticks from 1,000 to
/// 10,000,000 (boot times of 1 s to ≈2.8 h) and a host sweep long enough to
/// cover `sweep_slash24s` /24 blocks past its starting point.
struct SeedSearchConfig {
  std::uint32_t min_tick = 1000;
  std::uint32_t max_tick = 10'000'000;
  std::uint32_t tick_step = 1;        ///< 1 ms resolution, like the paper.
  std::uint32_t sweep_slash24s = 4096;  ///< Footprint ≈ 1M addresses.
};

/// All tick values in the configured range whose random-start sweep would
/// cover `target` (i.e. whose starting /24 lies within sweep_slash24s /24s
/// at or before the target's /24, with wraparound).
[[nodiscard]] std::vector<SeedCandidate> FindSeedsCovering(
    net::Ipv4 target, const SeedSearchConfig& config = {});

/// Seeds covering any address of a sensor block (deduplicated).
[[nodiscard]] std::vector<SeedCandidate> FindSeedsCoveringBlock(
    const net::Prefix& block, const SeedSearchConfig& config = {});

/// Summary statistics over candidate uptimes (for "centered around 4–5
/// minutes" style reporting).
struct UptimeSummary {
  std::size_t candidates = 0;
  double min_seconds = 0.0;
  double median_seconds = 0.0;
  double max_seconds = 0.0;
};

[[nodiscard]] UptimeSummary SummarizeUptimes(
    const std::vector<SeedCandidate>& candidates);

}  // namespace hotspots::analysis
