#include "analysis/block_comparison.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hotspots::analysis {

BlockComparisonReport CompareBlocks(
    std::vector<BlockObservation> observations) {
  if (observations.empty()) {
    throw std::invalid_argument("CompareBlocks: no observations");
  }
  BlockComparisonReport report;
  report.ranked = std::move(observations);
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const BlockObservation& a, const BlockObservation& b) {
              return a.Rate() > b.Rate();
            });

  double min_nonzero = 0.0;
  double max = 0.0;
  for (const BlockObservation& block : report.ranked) {
    if (block.count == 0) {
      ++report.silent_blocks;
      continue;
    }
    const double rate = block.Rate();
    max = std::max(max, rate);
    if (min_nonzero == 0.0 || rate < min_nonzero) min_nonzero = rate;
  }
  if (min_nonzero > 0.0 && max > min_nonzero) {
    report.max_spread = max / min_nonzero;
    report.orders_of_magnitude = std::log10(report.max_spread);
  }
  return report;
}

}  // namespace hotspots::analysis
