// Uniformity statistics: quantifying "deviation from uniform propagation".
//
// The paper defines hotspots qualitatively; this module gives the library a
// quantitative footing.  Given a per-bin observation histogram (typically
// unique sources per destination /24), it computes the classical measures
// of departure from the uniform baseline: Pearson's χ², KL divergence from
// uniform, the Gini coefficient, peak-to-mean ratio, and a "hotspot
// concentration" (smallest fraction of bins holding half the mass).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hotspots::analysis {

/// Summary of a histogram's deviation from uniformity.
struct UniformityReport {
  std::uint64_t total = 0;        ///< Sum over all bins.
  std::size_t bins = 0;
  double mean = 0.0;
  double max = 0.0;
  double chi_square = 0.0;        ///< Pearson statistic vs uniform expectation.
  double chi_square_dof = 0.0;    ///< Degrees of freedom (bins − 1).
  double kl_divergence = 0.0;     ///< D(observed ‖ uniform), nats.
  double gini = 0.0;              ///< 0 = perfectly uniform, →1 = one spike.
  double peak_to_mean = 0.0;
  /// Smallest fraction of bins that together hold ≥ 50 % of the mass
  /// (0.5 for a uniform histogram; → 0 as observations concentrate).
  double half_mass_bin_fraction = 0.0;

  /// A single hotspot verdict: true when the histogram is grossly
  /// incompatible with uniformity (χ²/dof > 2 and Gini > 0.2).  The
  /// thresholds are deliberately blunt; experiments report the raw numbers.
  [[nodiscard]] bool LooksNonUniform() const {
    return chi_square_dof > 0 && chi_square / chi_square_dof > 2.0 &&
           gini > 0.2;
  }
};

/// Analyzes `counts` (one entry per bin).  Throws if empty.
[[nodiscard]] UniformityReport AnalyzeUniformity(
    std::span<const std::uint64_t> counts);

/// Gini coefficient of `counts` (0 when all equal; requires non-empty).
[[nodiscard]] double GiniCoefficient(std::span<const std::uint64_t> counts);

}  // namespace hotspots::analysis
