#include "analysis/uniformity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hotspots::analysis {

double GiniCoefficient(std::span<const std::uint64_t> counts) {
  if (counts.empty()) {
    throw std::invalid_argument("GiniCoefficient: empty histogram");
  }
  std::vector<std::uint64_t> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end());
  long double weighted = 0.0L;
  long double total = 0.0L;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<long double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total == 0.0L) return 0.0;
  const auto n = static_cast<long double>(sorted.size());
  const long double gini = (2.0L * weighted) / (n * total) - (n + 1.0L) / n;
  return static_cast<double>(gini);
}

UniformityReport AnalyzeUniformity(std::span<const std::uint64_t> counts) {
  if (counts.empty()) {
    throw std::invalid_argument("AnalyzeUniformity: empty histogram");
  }
  UniformityReport report;
  report.bins = counts.size();
  for (const std::uint64_t c : counts) {
    report.total += c;
    report.max = std::max(report.max, static_cast<double>(c));
  }
  report.mean =
      static_cast<double>(report.total) / static_cast<double>(report.bins);
  report.chi_square_dof = static_cast<double>(report.bins - 1);
  report.peak_to_mean = report.mean > 0 ? report.max / report.mean : 0.0;
  report.gini = GiniCoefficient(counts);

  if (report.total > 0) {
    const double expected = report.mean;
    const double uniform_p = 1.0 / static_cast<double>(report.bins);
    double chi = 0.0;
    double kl = 0.0;
    for (const std::uint64_t c : counts) {
      const double diff = static_cast<double>(c) - expected;
      chi += diff * diff / expected;
      if (c > 0) {
        const double p = static_cast<double>(c) / static_cast<double>(report.total);
        kl += p * std::log(p / uniform_p);
      }
    }
    report.chi_square = chi;
    report.kl_divergence = kl;

    // Half-mass concentration: sort descending, count bins to 50 % mass.
    std::vector<std::uint64_t> sorted(counts.begin(), counts.end());
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    std::uint64_t running = 0;
    std::size_t needed = 0;
    const std::uint64_t half = (report.total + 1) / 2;
    for (const std::uint64_t c : sorted) {
      ++needed;
      running += c;
      if (running >= half) break;
    }
    report.half_mass_bin_fraction =
        static_cast<double>(needed) / static_cast<double>(report.bins);
  }
  return report;
}

}  // namespace hotspots::analysis
