// Cross-darknet comparison — the measurement methodology behind the paper.
//
// The empirical studies the paper builds on (Cooke et al., "Toward
// understanding distributed blackhole placement"; Pang et al.,
// "Characteristics of Internet background radiation") established that
// distinct darknets see orders-of-magnitude different traffic.  This module
// packages those comparisons: per-block rates normalized by block size,
// pairwise ratios, the maximum spread, and a rank ordering — so experiments
// can state "block X saw N× block Y" with one call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hotspots::analysis {

/// One darknet's observation, normalized for comparison.
struct BlockObservation {
  std::string label;
  std::uint64_t addresses = 0;  ///< Block size.
  std::uint64_t count = 0;      ///< Probes or unique sources observed.

  /// Observations per address — the size-normalized rate.
  [[nodiscard]] double Rate() const {
    return addresses == 0 ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(addresses);
  }
};

/// Pairwise comparison summary across blocks.
struct BlockComparisonReport {
  /// Blocks sorted by descending per-address rate.
  std::vector<BlockObservation> ranked;
  /// max rate / min nonzero rate; 0 when fewer than two nonzero blocks.
  double max_spread = 0.0;
  /// Number of blocks that saw nothing at all.
  std::size_t silent_blocks = 0;
  /// log10 of max_spread — the "orders of magnitude" headline.
  double orders_of_magnitude = 0.0;

  /// True when same-sized sensors disagree by more than `factor`.
  [[nodiscard]] bool DisagreesBeyond(double factor) const {
    return max_spread > factor;
  }
};

/// Builds the comparison.  Throws on empty input.
[[nodiscard]] BlockComparisonReport CompareBlocks(
    std::vector<BlockObservation> observations);

}  // namespace hotspots::analysis
