#include "obs/sampler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>

#include "obs/json_writer.h"
#include "obs/stage_timer.h"

namespace hotspots::obs {

MetricsSampler::MetricsSampler(Registry& registry, SamplerOptions options)
    : registry_(registry), options_(options) {
  if (options_.interval_ms <= 0) {
    throw std::invalid_argument("MetricsSampler: interval_ms must be > 0");
  }
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::scoped_lock lock{mutex_};
  if (started_) {
    throw std::logic_error("MetricsSampler::Start: already started");
  }
  started_ = true;
  start_ns_ = NowNanos();
  SampleLocked();
  worker_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  std::thread to_join;
  {
    std::scoped_lock lock{mutex_};
    if (stopped_) return;
    stop_requested_ = true;
    stopped_ = true;
    to_join = std::move(worker_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::scoped_lock lock{mutex_};
  if (started_) SampleLocked();  // Final sample once the thread is gone.
}

void MetricsSampler::Loop() {
  std::unique_lock lock{mutex_};
  while (!cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                       [this] { return stop_requested_; })) {
    SampleLocked();
  }
}

void MetricsSampler::SampleLocked() {
  times_ns_.push_back(NowNanos() - start_ns_);
  snapshots_.push_back(registry_.TakeSnapshot());
}

void MetricsSampler::RequireStopped(const char* what) const {
  if (!stopped_) {
    throw std::logic_error(std::string("MetricsSampler::") + what +
                           ": series is readable only after Stop()");
  }
}

std::size_t MetricsSampler::sample_count() const {
  std::scoped_lock lock{mutex_};
  RequireStopped("sample_count");
  return snapshots_.size();
}

const std::vector<std::uint64_t>& MetricsSampler::times_ns() const {
  std::scoped_lock lock{mutex_};
  RequireStopped("times_ns");
  return times_ns_;
}

const std::vector<Snapshot>& MetricsSampler::snapshots() const {
  std::scoped_lock lock{mutex_};
  RequireStopped("snapshots");
  return snapshots_;
}

std::string MetricsSampler::ToJson() const {
  std::scoped_lock lock{mutex_};
  RequireStopped("ToJson");

  // Metrics can register mid-run, so serialize the union of names; a sample
  // predating a counter reads as 0 and a missing gauge as null.
  std::set<std::string> counter_names;
  std::set<std::string> gauge_names;
  for (const Snapshot& snapshot : snapshots_) {
    for (const auto& counter : snapshot.counters) {
      counter_names.insert(counter.name);
    }
    for (const auto& gauge : snapshot.gauges) gauge_names.insert(gauge.name);
  }

  JsonWriter writer(0);  // Series get long; write compact.
  writer.BeginObject();
  writer.KV("schema", kTimeseriesSchema);
  writer.KV("interval_ms", options_.interval_ms);
  writer.Key("start_ns");
  writer.Value(start_ns_);
  writer.Key("samples");
  writer.Value(static_cast<std::uint64_t>(snapshots_.size()));

  writer.Key("t_ns");
  writer.BeginArray();
  for (const std::uint64_t t : times_ns_) writer.Value(t);
  writer.EndArray();

  writer.Key("counters");
  writer.BeginObject();
  for (const std::string& name : counter_names) {
    const auto value_at = [&](std::size_t i) -> std::uint64_t {
      const CounterSample* sample = snapshots_[i].FindCounter(name);
      return sample != nullptr ? sample->value : 0;
    };
    writer.Key(name);
    writer.BeginObject();
    writer.Key("base");
    writer.Value(snapshots_.empty() ? std::uint64_t{0} : value_at(0));
    writer.Key("deltas");
    writer.BeginArray();
    for (std::size_t i = 1; i < snapshots_.size(); ++i) {
      const std::uint64_t prev = value_at(i - 1);
      const std::uint64_t curr = value_at(i);
      // Shards are monotone, so curr >= prev; clamp defensively anyway.
      writer.Value(curr >= prev ? curr - prev : std::uint64_t{0});
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndObject();

  writer.Key("gauges");
  writer.BeginObject();
  for (const std::string& name : gauge_names) {
    writer.Key(name);
    writer.BeginArray();
    for (const Snapshot& snapshot : snapshots_) {
      const GaugeSample* sample = snapshot.FindGauge(name);
      if (sample == nullptr) {
        writer.Null();
      } else {
        writer.Value(sample->value);  // NaN serializes as null.
      }
    }
    writer.EndArray();
  }
  writer.EndObject();

  writer.EndObject();
  return writer.str();
}

bool MetricsSampler::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "timeseries export: cannot open %s\n", path.c_str());
    return false;
  }
  out << ToJson() << '\n';
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace hotspots::obs
