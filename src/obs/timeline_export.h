// Chrome/Perfetto trace-event export for drained span timelines.
//
// The output is the trace-event JSON object form understood by
// chrome://tracing and ui.perfetto.dev: a "traceEvents" array of duration
// begin ("ph":"B") / end ("ph":"E") pairs plus one "thread_name" metadata
// event per lane.  Extra top-level keys carry repo-specific context (the
// schema tag, the drop count, the absolute start timestamp) — trace viewers
// ignore keys they do not know.
//
// Timestamps are microseconds relative to Timeline::start_ns, written with
// fractional digits so nanosecond resolution survives.  Events are emitted
// per thread in a stack order that keeps B/E pairs balanced and timestamps
// monotone within each tid (ci.sh's validator checks both).
#pragma once

#include <string>

#include "obs/trace_span.h"

namespace hotspots::obs {

/// Schema tag stamped into every timeline document.
inline constexpr const char* kTimelineSchema = "hotspots.timeline.v1";

/// Serializes `timeline` as a complete Chrome trace-event JSON document.
[[nodiscard]] std::string TimelineToChromeTrace(const Timeline& timeline);

/// Writes TimelineToChromeTrace(timeline) to `path`.  Returns false (after
/// printing to stderr) when the file cannot be written.
bool WriteTimelineFile(const std::string& path, const Timeline& timeline);

}  // namespace hotspots::obs
