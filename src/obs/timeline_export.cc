#include "obs/timeline_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "obs/json_writer.h"

namespace hotspots::obs {

namespace {

/// Microseconds (with sub-µs fraction) relative to the timeline start.
double RelativeMicros(std::uint64_t ns, std::uint64_t start_ns) {
  return static_cast<double>(ns - start_ns) / 1000.0;
}

void EmitDurationEvent(JsonWriter& writer, const char* phase,
                       std::uint32_t tid, double ts_us,
                       const std::string* name) {
  writer.BeginObject();
  if (name != nullptr) writer.KV("name", *name);
  writer.KV("ph", phase);
  writer.Key("ts");
  writer.FixedValue(ts_us, 3);
  writer.KV("pid", 0);
  writer.KV("tid", static_cast<std::uint64_t>(tid));
  writer.EndObject();
}

void EmitThreadName(JsonWriter& writer, std::uint32_t tid,
                    const std::string& lane) {
  writer.BeginObject();
  writer.KV("name", "thread_name");
  writer.KV("ph", "M");
  writer.Key("ts");
  writer.FixedValue(0.0, 3);
  writer.KV("pid", 0);
  writer.KV("tid", static_cast<std::uint64_t>(tid));
  writer.Key("args");
  writer.BeginObject();
  writer.KV("name", lane);
  writer.EndObject();
  writer.EndObject();
}

}  // namespace

std::string TimelineToChromeTrace(const Timeline& timeline) {
  // Group span indices per tid; emission is per thread so B/E pairs nest.
  std::map<std::uint32_t, std::vector<std::size_t>> by_tid;
  for (std::size_t i = 0; i < timeline.spans.size(); ++i) {
    by_tid[timeline.spans[i].tid].push_back(i);
  }

  JsonWriter writer(0);  // Timelines get large; write compact.
  writer.BeginObject();
  writer.KV("schema", kTimelineSchema);
  writer.KV("displayTimeUnit", "ns");
  writer.Key("start_ns");
  writer.Value(timeline.start_ns);
  writer.Key("dropped");
  writer.Value(timeline.dropped);
  writer.Key("traceEvents");
  writer.BeginArray();

  for (auto& [tid, indices] : by_tid) {
    const std::string lane = tid < timeline.lanes.size()
                                 ? timeline.lanes[tid]
                                 : "t" + std::to_string(tid);
    EmitThreadName(writer, tid, lane);

    // Sorting by (begin asc, end desc) opens parents before children, so a
    // simple end-time stack recovers the nesting RAII guarantees per thread.
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t a, std::size_t b) {
                const TimelineSpan& sa = timeline.spans[a];
                const TimelineSpan& sb = timeline.spans[b];
                if (sa.begin_ns != sb.begin_ns) {
                  return sa.begin_ns < sb.begin_ns;
                }
                if (sa.end_ns != sb.end_ns) return sa.end_ns > sb.end_ns;
                return a < b;
              });

    std::vector<std::uint64_t> open_ends;
    std::uint64_t last_ns = 0;  // Keeps emitted timestamps monotone per tid.
    for (const std::size_t index : indices) {
      const TimelineSpan& span = timeline.spans[index];
      while (!open_ends.empty() && open_ends.back() <= span.begin_ns) {
        last_ns = std::max(last_ns, open_ends.back());
        EmitDurationEvent(writer, "E", tid,
                          RelativeMicros(last_ns, timeline.start_ns), nullptr);
        open_ends.pop_back();
      }
      const std::string& name =
          span.name_id < timeline.names.size()
              ? timeline.names[span.name_id]
              : "span-" + std::to_string(span.name_id);
      last_ns = std::max(last_ns, span.begin_ns);
      EmitDurationEvent(writer, "B", tid,
                        RelativeMicros(last_ns, timeline.start_ns), &name);
      open_ends.push_back(std::max(span.end_ns, last_ns));
    }
    while (!open_ends.empty()) {
      last_ns = std::max(last_ns, open_ends.back());
      EmitDurationEvent(writer, "E", tid,
                        RelativeMicros(last_ns, timeline.start_ns), nullptr);
      open_ends.pop_back();
    }
  }

  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

bool WriteTimelineFile(const std::string& path, const Timeline& timeline) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "timeline export: cannot open %s\n", path.c_str());
    return false;
  }
  out << TimelineToChromeTrace(timeline) << '\n';
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace hotspots::obs
