#include "obs/trace_span.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace hotspots::obs {

namespace {

/// -2 = not yet resolved, -1 = resolve from environment, 0/1 = forced.
std::atomic<int> g_forced{-1};
std::atomic<int> g_cached{-2};

int ReadEnvironment() noexcept {
  const char* value = std::getenv("HOTSPOTS_OBS_TRACE");
  if (value == nullptr || *value == '\0') return 0;
  return std::strcmp(value, "0") == 0 ? 0 : 1;
}

/// Returns the calling thread's buffer to the collector's free list when
/// the thread exits, so short-lived pool threads recycle rings instead of
/// growing the buffer set without bound.
struct ThreadSlot {
  SpanBuffer* buffer = nullptr;

  ~ThreadSlot() {
    if (buffer != nullptr) SpanCollector::Global().ReleaseBuffer(buffer);
  }
};

thread_local ThreadSlot t_slot;

}  // namespace

bool TracingEnabled() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  int cached = g_cached.load(std::memory_order_relaxed);
  if (cached == -2) {
    cached = ReadEnvironment();
    g_cached.store(cached, std::memory_order_relaxed);
  }
  return cached != 0;
}

void SetTracingForTesting(int forced) noexcept {
  g_forced.store(forced < 0 ? -1 : (forced != 0 ? 1 : 0),
                 std::memory_order_relaxed);
}

void ForceTracing() noexcept { SetTracingForTesting(1); }

SpanCollector& SpanCollector::Global() {
  static SpanCollector* collector = new SpanCollector();  // Never destroyed.
  return *collector;
}

std::uint32_t SpanCollector::InternName(std::string_view name) {
  std::scoped_lock lock{mutex_};
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

void SpanCollector::SetThreadLane(std::string_view lane) {
  SpanBuffer& buffer = ThisThreadBuffer();
  std::scoped_lock lock{mutex_};
  lanes_[buffer.tid_] = std::string(lane);
}

SpanBuffer& SpanCollector::ThisThreadBuffer() {
  if (t_slot.buffer != nullptr) return *t_slot.buffer;
  std::scoped_lock lock{mutex_};
  SpanBuffer* buffer = nullptr;
  if (!free_.empty()) {
    buffer = free_.back();
    free_.pop_back();
    // Records the previous owner never drained stay attributed to its tid.
    DrainBufferLocked(*buffer);
  } else {
    buffers_.push_back(std::make_unique<SpanBuffer>());
    buffer = buffers_.back().get();
  }
  buffer->tid_ = next_tid_++;
  lanes_.push_back("t" + std::to_string(buffer->tid_));
  t_slot.buffer = buffer;
  return *buffer;
}

void SpanCollector::ReleaseBuffer(SpanBuffer* buffer) {
  std::scoped_lock lock{mutex_};
  free_.push_back(buffer);
}

void SpanCollector::DrainBufferLocked(SpanBuffer& buffer) {
  const std::uint64_t head = buffer.head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = buffer.tail_.load(std::memory_order_acquire);
  for (std::uint64_t i = head; i != tail; ++i) {
    const SpanRecord& record = buffer.ring_[i & (SpanBuffer::kCapacity - 1)];
    drained_.push_back(
        {record.begin_ns, record.end_ns, record.name_id, buffer.tid_});
  }
  buffer.head_.store(tail, std::memory_order_release);
}

void SpanCollector::Drain() {
  std::scoped_lock lock{mutex_};
  for (const auto& buffer : buffers_) DrainBufferLocked(*buffer);
}

Timeline SpanCollector::TakeTimeline() {
  std::scoped_lock lock{mutex_};
  for (const auto& buffer : buffers_) DrainBufferLocked(*buffer);
  Timeline timeline;
  timeline.names = names_;
  timeline.lanes = lanes_;
  timeline.spans = std::move(drained_);
  drained_.clear();
  for (const auto& buffer : buffers_) {
    timeline.dropped += buffer->drops_.exchange(0, std::memory_order_relaxed);
  }
  if (!timeline.spans.empty()) {
    timeline.start_ns = std::min_element(timeline.spans.begin(),
                                         timeline.spans.end(),
                                         [](const TimelineSpan& a,
                                            const TimelineSpan& b) {
                                           return a.begin_ns < b.begin_ns;
                                         })
                            ->begin_ns;
  }
  return timeline;
}

void SpanCollector::ResetForTesting() {
  std::scoped_lock lock{mutex_};
  for (const auto& buffer : buffers_) {
    DrainBufferLocked(*buffer);
    buffer->drops_.store(0, std::memory_order_relaxed);
  }
  drained_.clear();
}

std::size_t SpanCollector::BufferCountForTesting() {
  std::scoped_lock lock{mutex_};
  return buffers_.size();
}

std::uint32_t InternSpanName(std::string_view name) {
  return SpanCollector::Global().InternName(name);
}

void TraceSpan::Commit() noexcept {
  SpanCollector::Global().Append({begin_, NowNanos(), name_id_});
}

}  // namespace hotspots::obs
