#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hotspots::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.12g", value);
  return buffer;
}

JsonWriter& JsonWriter::BeginObject() {
  OpenContainer(Scope::kObject, '{');
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CloseContainer(Scope::kObject, '}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  OpenContainer(Scope::kArray, '[');
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CloseContainer(Scope::kArray, ']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (stack_.empty() || stack_.back().scope != Scope::kObject) {
    throw std::logic_error("JsonWriter: Key() outside an object");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: Key() while a value is pending");
  }
  if (stack_.back().members > 0) WriteRaw(",");
  NewlineIndent(stack_.size());
  WriteRaw("\"");
  WriteRaw(JsonEscape(key));
  WriteRaw(indent_ > 0 ? "\": " : "\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view text) {
  BeforeValue();
  WriteRaw("\"");
  WriteRaw(JsonEscape(text));
  WriteRaw("\"");
  return *this;
}

JsonWriter& JsonWriter::Value(double number) {
  BeforeValue();
  WriteRaw(JsonNumber(number));
  return *this;
}

JsonWriter& JsonWriter::FixedValue(double number, int decimals) {
  BeforeValue();
  if (!std::isfinite(number)) {
    WriteRaw("null");
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, number);
  WriteRaw(buffer);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t number) {
  BeforeValue();
  WriteRaw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t number) {
  BeforeValue();
  WriteRaw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::Value(bool flag) {
  BeforeValue();
  WriteRaw(flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  WriteRaw("null");
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

void JsonWriter::BeforeValue() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) {
    // Top-level scalar (or the root container, handled by OpenContainer).
    done_ = true;
    return;
  }
  Frame& frame = stack_.back();
  if (frame.scope == Scope::kObject) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: object value without a Key()");
    }
    key_pending_ = false;
  } else {
    if (frame.members > 0) WriteRaw(",");
    NewlineIndent(stack_.size());
  }
  ++frame.members;
}

void JsonWriter::OpenContainer(Scope scope, char bracket) {
  BeforeValue();
  done_ = false;  // BeforeValue marks top-level scalars done; undo for us.
  stack_.push_back(Frame{scope, 0});
  WriteRaw(std::string_view{&bracket, 1});
}

void JsonWriter::CloseContainer(Scope scope, char bracket) {
  if (stack_.empty() || stack_.back().scope != scope) {
    throw std::logic_error("JsonWriter: mismatched container close");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: container close with a key pending");
  }
  const bool had_members = stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) NewlineIndent(stack_.size());
  WriteRaw(std::string_view{&bracket, 1});
  if (stack_.empty()) done_ = true;
}

void JsonWriter::NewlineIndent(std::size_t depth) {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(depth * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::WriteRaw(std::string_view text) { out_ += text; }

}  // namespace hotspots::obs
