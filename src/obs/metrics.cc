#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hotspots::obs {

namespace {

/// Each thread gets a stable shard slot assigned on first use; successive
/// threads spread round-robin over the shards.
std::size_t ThisThreadShard() noexcept {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// CAS loop folding `delta` into an atomic double sum.
void AtomicAdd(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// CAS loop keeping the extreme of the current and given value; an unset
/// (NaN) slot adopts `value`.
template <typename Better>
void AtomicExtreme(std::atomic<double>& target, double value,
                   Better better) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (std::isnan(current) || better(value, current)) {
    if (target.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

void Counter::Add(std::uint64_t delta) noexcept {
  cells_[ThisThreadShard() & (kShards - 1)].value.fetch_add(
      delta, std::memory_order_relaxed);
}

std::uint64_t Counter::Value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Set(double value) noexcept {
  value_.store(value, std::memory_order_relaxed);
  written_.store(true, std::memory_order_release);
}

void Gauge::SetMax(double value) noexcept {
  AtomicExtreme(value_, value, [](double a, double b) { return a > b; });
  written_.store(true, std::memory_order_release);
}

void Gauge::SetMin(double value) noexcept {
  AtomicExtreme(value_, value, [](double a, double b) { return a < b; });
  written_.store(true, std::memory_order_release);
}

bool Gauge::has_value() const noexcept {
  return written_.load(std::memory_order_acquire);
}

double Gauge::Value() const noexcept {
  return value_.load(std::memory_order_relaxed);
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must strictly ascend");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);  // Value-initialized to zero.
}

void Histogram::Observe(double value) noexcept {
  // First bucket whose (inclusive) upper bound admits the value; the
  // overflow bucket takes everything past bounds_.back().
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicExtreme(min_, value, [](double a, double b) { return a < b; });
  AtomicExtreme(max_, value, [](double a, double b) { return a > b; });
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::uint64_t Histogram::Count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::Min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      int count) {
  if (start <= 0.0 || factor <= 1.0 || count < 1) {
    throw std::invalid_argument(
        "ExponentialBounds: need start > 0, factor > 1, count ≥ 1");
  }
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const CounterSample* Snapshot::FindCounter(std::string_view name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const GaugeSample* Snapshot::FindGauge(std::string_view name) const {
  for (const GaugeSample& sample : gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* Snapshot::FindHistogram(std::string_view name) const {
  for (const HistogramSample& sample : histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

Registry& Registry::Global() {
  static Registry* const registry = new Registry;  // Never destroyed.
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string{name}, std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string{name}, std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::span<const double> bounds) {
  const std::scoped_lock lock{mutex_};
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string{name}, std::make_unique<Histogram>(bounds))
              .first->second;
}

Snapshot Registry::TakeSnapshot() const {
  const std::scoped_lock lock{mutex_};
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back(CounterSample{name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    if (!gauge->has_value()) continue;  // Never written — nothing to report.
    snapshot.gauges.push_back(GaugeSample{name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    sample.buckets = histogram->BucketCounts();
    sample.count = histogram->Count();
    sample.sum = histogram->Sum();
    sample.min = histogram->Min();
    sample.max = histogram->Max();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void Registry::ResetForTesting() {
  const std::scoped_lock lock{mutex_};
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace hotspots::obs
