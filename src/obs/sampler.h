// Background metrics sampler: periodic Registry snapshots → time series.
//
// A run-total counter dump (--metrics-out) says what a run cost; it cannot
// say when — whether the serial commit fraction grows as an outbreak ramps,
// or whether probes/s sags mid-run.  MetricsSampler snapshots a Registry
// from its own thread every interval_ms into an in-memory series and
// serializes it as a `hotspots.timeseries.v1` sidecar: counters as a base
// value plus per-sample deltas (each Counter shard is monotone, so deltas
// are non-negative), gauges as per-sample values with null for
// not-yet-written samples.  Histograms are omitted from the series — their
// run totals live in the metrics sidecar.
//
// The sampler observes, never steers: it only calls TakeSnapshot(), which
// takes the registry mutex briefly and reads atomics, so a sampled run
// stays bit-identical to an unsampled one
// (tests/obs_trace_determinism_test.cc).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace hotspots::obs {

/// Schema tag stamped into every timeseries JSON document.
inline constexpr const char* kTimeseriesSchema = "hotspots.timeseries.v1";

struct SamplerOptions {
  int interval_ms = 50;  ///< Snapshot period; must be > 0.
};

class MetricsSampler {
 public:
  explicit MetricsSampler(Registry& registry, SamplerOptions options = {});
  ~MetricsSampler();  // Stops (joining the thread) if still running.

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Takes sample 0 and starts the sampling thread.  Throws
  /// std::logic_error if already started.
  void Start();

  /// Takes one final sample and joins the thread.  Idempotent; a no-op when
  /// never started.
  void Stop();

  /// The recorded series; valid only after Stop() (throws before).
  [[nodiscard]] std::size_t sample_count() const;
  [[nodiscard]] const std::vector<std::uint64_t>& times_ns() const;
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const;

  /// Serializes the stopped series as a hotspots.timeseries.v1 document.
  [[nodiscard]] std::string ToJson() const;

  /// Writes ToJson() to `path`; false (after stderr) when unwritable.
  bool WriteFile(const std::string& path) const;

 private:
  void Loop();
  void SampleLocked();
  void RequireStopped(const char* what) const;

  Registry& registry_;
  const SamplerOptions options_;
  std::uint64_t start_ns_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool started_ = false;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread worker_;

  std::vector<std::uint64_t> times_ns_;  ///< Relative to start_ns_.
  std::vector<Snapshot> snapshots_;
};

}  // namespace hotspots::obs
