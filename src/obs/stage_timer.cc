#include "obs/stage_timer.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hotspots::obs {

namespace {

/// -2 = not yet resolved, -1 = resolve from environment, 0/1 = forced.
std::atomic<int> g_forced{-1};
std::atomic<int> g_cached{-2};

int ReadEnvironment() noexcept {
  const char* value = std::getenv("HOTSPOTS_OBS_TIMERS");
  if (value == nullptr || *value == '\0') return 0;
  return std::strcmp(value, "0") == 0 ? 0 : 1;
}

}  // namespace

bool StageTimersEnabled() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  int cached = g_cached.load(std::memory_order_relaxed);
  if (cached == -2) {
    cached = ReadEnvironment();
    g_cached.store(cached, std::memory_order_relaxed);
  }
  return cached != 0;
}

void SetStageTimersForTesting(int forced) noexcept {
  g_forced.store(forced < 0 ? -1 : (forced != 0 ? 1 : 0),
                 std::memory_order_relaxed);
}

}  // namespace hotspots::obs
