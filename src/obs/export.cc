#include "obs/export.h"

#include <cmath>

namespace hotspots::obs {

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the repo's dotted
/// names map '.' (and anything else invalid) to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Exposition-format float: NaN/±Inf spell their Prometheus literals
/// (JsonNumber would turn them into "null", which the format rejects).
std::string PrometheusNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return JsonNumber(value);
}

}  // namespace

void WriteSnapshotSections(const Snapshot& snapshot, JsonWriter& writer) {
  writer.Key("counters").BeginObject();
  for (const CounterSample& sample : snapshot.counters) {
    writer.KV(sample.name, sample.value);
  }
  writer.EndObject();

  writer.Key("gauges").BeginObject();
  for (const GaugeSample& sample : snapshot.gauges) {
    writer.KV(sample.name, sample.value);
  }
  writer.EndObject();

  writer.Key("histograms").BeginObject();
  for (const HistogramSample& sample : snapshot.histograms) {
    writer.Key(sample.name).BeginObject();
    writer.Key("bounds").BeginArray();
    for (const double bound : sample.bounds) writer.Value(bound);
    writer.EndArray();
    writer.Key("buckets").BeginArray();
    for (const std::uint64_t count : sample.buckets) writer.Value(count);
    writer.EndArray();
    writer.KV("count", sample.count);
    writer.KV("sum", sample.sum);
    if (sample.count > 0) {
      writer.KV("min", sample.min);
      writer.KV("max", sample.max);
      writer.KV("mean", sample.sum / static_cast<double>(sample.count));
    }
    writer.EndObject();
  }
  writer.EndObject();
}

std::string SnapshotToJson(const Snapshot& snapshot) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", kMetricsSchema);
  WriteSnapshotSections(snapshot, writer);
  writer.EndObject();
  return writer.str();
}

std::string SnapshotToCsv(const Snapshot& snapshot) {
  std::string out = "kind,name,key,value\n";
  const auto csv_field = [](const std::string& name) {
    // Metric names are [a-z0-9._] by convention, but quote defensively.
    if (name.find_first_of(",\"\n") == std::string::npos) return name;
    std::string quoted = "\"";
    for (const char c : name) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  for (const CounterSample& sample : snapshot.counters) {
    out += "counter," + csv_field(sample.name) + ",value," +
           std::to_string(sample.value) + "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    out += "gauge," + csv_field(sample.name) + ",value," +
           JsonNumber(sample.value) + "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const std::string name = csv_field(sample.name);
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      const std::string bound =
          i < sample.bounds.size() ? JsonNumber(sample.bounds[i]) : "+inf";
      out += "histogram," + name + ",le=" + bound + "," +
             std::to_string(sample.buckets[i]) + "\n";
    }
    out += "histogram," + name + ",count," + std::to_string(sample.count) +
           "\n";
    out += "histogram," + name + ",sum," + JsonNumber(sample.sum) + "\n";
  }
  return out;
}

std::string SnapshotToPrometheus(const Snapshot& snapshot) {
  std::string out;
  for (const CounterSample& sample : snapshot.counters) {
    const std::string name = PrometheusName(sample.name) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(sample.value) + "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    const std::string name = PrometheusName(sample.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + PrometheusNumber(sample.value) + "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const std::string name = PrometheusName(sample.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      cumulative += sample.buckets[i];
      const std::string bound = i < sample.bounds.size()
                                    ? PrometheusNumber(sample.bounds[i])
                                    : "+Inf";
      out += name + "_bucket{le=\"" + bound + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + PrometheusNumber(sample.sum) + "\n";
    out += name + "_count " + std::to_string(sample.count) + "\n";
  }
  return out;
}

}  // namespace hotspots::obs
