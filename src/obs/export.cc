#include "obs/export.h"

namespace hotspots::obs {

void WriteSnapshotSections(const Snapshot& snapshot, JsonWriter& writer) {
  writer.Key("counters").BeginObject();
  for (const CounterSample& sample : snapshot.counters) {
    writer.KV(sample.name, sample.value);
  }
  writer.EndObject();

  writer.Key("gauges").BeginObject();
  for (const GaugeSample& sample : snapshot.gauges) {
    writer.KV(sample.name, sample.value);
  }
  writer.EndObject();

  writer.Key("histograms").BeginObject();
  for (const HistogramSample& sample : snapshot.histograms) {
    writer.Key(sample.name).BeginObject();
    writer.Key("bounds").BeginArray();
    for (const double bound : sample.bounds) writer.Value(bound);
    writer.EndArray();
    writer.Key("buckets").BeginArray();
    for (const std::uint64_t count : sample.buckets) writer.Value(count);
    writer.EndArray();
    writer.KV("count", sample.count);
    writer.KV("sum", sample.sum);
    if (sample.count > 0) {
      writer.KV("min", sample.min);
      writer.KV("max", sample.max);
      writer.KV("mean", sample.sum / static_cast<double>(sample.count));
    }
    writer.EndObject();
  }
  writer.EndObject();
}

std::string SnapshotToJson(const Snapshot& snapshot) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", kMetricsSchema);
  WriteSnapshotSections(snapshot, writer);
  writer.EndObject();
  return writer.str();
}

std::string SnapshotToCsv(const Snapshot& snapshot) {
  std::string out = "kind,name,key,value\n";
  const auto csv_field = [](const std::string& name) {
    // Metric names are [a-z0-9._] by convention, but quote defensively.
    if (name.find_first_of(",\"\n") == std::string::npos) return name;
    std::string quoted = "\"";
    for (const char c : name) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  for (const CounterSample& sample : snapshot.counters) {
    out += "counter," + csv_field(sample.name) + ",value," +
           std::to_string(sample.value) + "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    out += "gauge," + csv_field(sample.name) + ",value," +
           JsonNumber(sample.value) + "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const std::string name = csv_field(sample.name);
    for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
      const std::string bound =
          i < sample.bounds.size() ? JsonNumber(sample.bounds[i]) : "+inf";
      out += "histogram," + name + ",le=" + bound + "," +
             std::to_string(sample.buckets[i]) + "\n";
    }
    out += "histogram," + name + ",count," + std::to_string(sample.count) +
           "\n";
    out += "histogram," + name + ",sum," + JsonNumber(sample.sum) + "\n";
  }
  return out;
}

}  // namespace hotspots::obs
