// Snapshot exporters: the machine-readable run-report formats.
//
// Every bench and example can dump the global registry as a JSON sidecar
// (--metrics-out), giving the repo one uniform perf-trajectory format; the
// CSV form is for spreadsheet-style diffing of counter values across runs.
// The JSON schema is documented in EXPERIMENTS.md ("Observability") and
// validated by ci.sh's metrics smoke step.
#pragma once

#include <string>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace hotspots::obs {

/// Schema tag stamped into every metrics JSON document.
inline constexpr const char* kMetricsSchema = "hotspots.metrics.v1";

/// Writes `snapshot` as the members of an (already Begin'd) JSON object:
/// "counters" / "gauges" (name → value maps) and "histograms" (name →
/// {bounds, buckets, count, sum, min, max}).  The caller owns the
/// enclosing object so it can add its own context (bench name, study
/// telemetry) beside the metric sections.
void WriteSnapshotSections(const Snapshot& snapshot, JsonWriter& writer);

/// Complete standalone document: {schema, counters, gauges, histograms}.
[[nodiscard]] std::string SnapshotToJson(const Snapshot& snapshot);

/// CSV rows `kind,name,value` (counters/gauges) and
/// `histogram,name,le=<bound>,<count>` per bucket (`le=+inf` for the
/// overflow bucket), plus `histogram,name,count|sum,<value>` totals.
[[nodiscard]] std::string SnapshotToCsv(const Snapshot& snapshot);

/// Prometheus text exposition (format 0.0.4), groundwork for the planned
/// ingest daemon's poller endpoint.  Metric names are sanitized to
/// [a-zA-Z0-9_:] ('.' and anything else invalid become '_'); counters gain
/// the conventional `_total` suffix; histograms export cumulative
/// `_bucket{le="..."}` rows ending in `le="+Inf"` plus `_sum` and `_count`.
/// Gauges holding NaN are written as the literal `NaN`.
[[nodiscard]] std::string SnapshotToPrometheus(const Snapshot& snapshot);

}  // namespace hotspots::obs
