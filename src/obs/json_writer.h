// Minimal streaming JSON writer.
//
// The repo emits machine-readable artifacts from several places — the
// hot-path bench appends entries to results/BENCH_hotpath.json, every bench
// can dump a metrics sidecar via --metrics-out, and the obs exporters
// serialize registry snapshots.  Hand-formatted JSON (the pre-obs
// micro_hotpath approach) gets escaping and comma placement wrong the
// moment a label contains a quote; this writer centralizes escaping,
// nesting, indentation, and float formatting.
//
// Usage is strictly streaming: Begin/End calls must nest correctly and
// every object member is Key() followed by exactly one value (or a nested
// container).  Violations throw std::logic_error — an artifact writer that
// produces invalid JSON should fail loudly in tests, not emit garbage that
// a downstream parser chokes on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hotspots::obs {

/// Escapes `text` as the body of a JSON string literal (no surrounding
/// quotes): quote, backslash, and control characters become their \-escapes.
[[nodiscard]] std::string JsonEscape(std::string_view text);

/// Formats a finite double with up to 12 significant digits; NaN and ±Inf —
/// which JSON cannot represent — become "null".
[[nodiscard]] std::string JsonNumber(double value);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts an object member; must be inside an object and followed by a
  /// value or nested container.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view text);
  JsonWriter& Value(const char* text) { return Value(std::string_view{text}); }
  JsonWriter& Value(double number);
  /// Fixed-point double (e.g. `decimals` = 4 → "0.2500"), for artifacts
  /// whose historical format used a fixed precision.
  JsonWriter& FixedValue(double number, int decimals);
  JsonWriter& Value(std::uint64_t number);
  JsonWriter& Value(std::int64_t number);
  JsonWriter& Value(int number) { return Value(static_cast<std::int64_t>(number)); }
  JsonWriter& Value(bool flag);
  JsonWriter& Null();

  /// Convenience: Key(key) + Value(value).
  template <typename T>
  JsonWriter& KV(std::string_view key, T&& value) {
    Key(key);
    return Value(std::forward<T>(value));
  }

  /// The document so far.  Complete (all containers closed) documents only;
  /// throws otherwise.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    int members = 0;
  };

  void BeforeValue();  ///< Comma/newline/indent bookkeeping, key-state check.
  void OpenContainer(Scope scope, char bracket);
  void CloseContainer(Scope scope, char bracket);
  void NewlineIndent(std::size_t depth);
  void WriteRaw(std::string_view text);

  int indent_;
  bool key_pending_ = false;  ///< A Key() was written, value expected next.
  bool done_ = false;         ///< Top-level value completed.
  std::vector<Frame> stack_;
  std::string out_;
};

}  // namespace hotspots::obs
