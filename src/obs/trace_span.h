// Per-thread span tracing, gated by HOTSPOTS_OBS_TRACE.
//
// A span is a begin/end pair of NowNanos() readings tagged with an interned
// name id.  Each producing thread owns one fixed-capacity single-producer /
// single-consumer ring buffer: the producer pushes with one relaxed tail
// load, one acquire head load, and one release tail store; when the ring is
// full the record is dropped and a per-buffer drop counter bumped, so a
// stalled consumer can never block the simulation.  The collector drains
// every ring under one mutex — the engine calls Drain() after each serial
// commit and at run end, so spans observe but never steer (runs stay
// bit-identical with tracing on or off; tests/obs_trace_determinism_test.cc
// pins this at 1 and 8 shards).
//
// Gating follows stage_timer.h exactly: HOTSPOTS_OBS_TRACE read once and
// cached in a plain atomic, so the disabled path is a single well-predicted
// branch with zero clock reads.  Hot loops hoist TracingEnabled() into a
// local const and pass it to the TraceSpan two-argument constructor.
//
// Threads come and go (a ShardPool lives for one Engine::Run; study pools
// per study), so buffers outlive their producer: a thread-exit hook returns
// the buffer to a free list, and the next new thread adopts it after the
// collector drains any still-pending records under the old thread id.  The
// set of buffers therefore grows to the peak number of concurrent producers,
// not the total number of threads ever started.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stage_timer.h"  // NowNanos()

namespace hotspots::obs {

/// True when HOTSPOTS_OBS_TRACE is set to a non-empty value other than "0"
/// (or an override is active).  First call reads the environment; later
/// calls are one relaxed atomic load.
[[nodiscard]] bool TracingEnabled() noexcept;

/// -1 restores the environment-derived value, 0/1 force disabled/enabled.
/// Not thread-safe against concurrent first-use.
void SetTracingForTesting(int forced) noexcept;

/// Programmatic opt-in (equivalent to forcing enabled): used by benches when
/// --timeline-out is passed, so a traced run does not require the env var.
void ForceTracing() noexcept;

/// One completed span as written by the producing thread.
struct SpanRecord {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t name_id = 0;
};

/// A drained span with the collector-assigned thread id attached.
struct TimelineSpan {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t name_id = 0;
  std::uint32_t tid = 0;
};

/// Everything TakeTimeline() hands to the exporter.  `names[name_id]` and
/// `lanes[tid]` resolve the ids; `dropped` counts records lost to full rings
/// since the previous TakeTimeline().
struct Timeline {
  std::vector<std::string> names;
  std::vector<std::string> lanes;  ///< Lane label per tid ("t<tid>" default).
  std::vector<TimelineSpan> spans;
  std::uint64_t dropped = 0;
  std::uint64_t start_ns = 0;  ///< Earliest begin_ns (0 when no spans).
};

/// Fixed-capacity SPSC ring.  The owning thread pushes; the collector
/// drains under its mutex.  Producers never block: a full ring drops.
class SpanBuffer {
 public:
  static constexpr std::size_t kCapacity = 4096;  // Power of two.

  /// Producer side (owning thread only).
  void Push(const SpanRecord& record) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == kCapacity) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring_[tail & (kCapacity - 1)] = record;
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Records dropped since the last TakeTimeline() (relaxed read).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  friend class SpanCollector;

  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::uint32_t tid_ = 0;  ///< Attribution id; collector-owned (under mutex).
  std::array<SpanRecord, kCapacity> ring_{};
};

/// Process-wide owner of every span ring, the name-intern table, and the
/// drained-span accumulator.
class SpanCollector {
 public:
  /// The process-wide collector (never destroyed).
  static SpanCollector& Global();

  /// Returns a stable id for `name`; same name, same id.  Ids index
  /// Timeline::names.  Callers resolve once (static local) and reuse.
  std::uint32_t InternName(std::string_view name);

  /// Labels the calling thread's lane in exported timelines ("shard-3",
  /// "study-1", "trace-writer").  Unlabelled threads show as "t<tid>".
  void SetThreadLane(std::string_view lane);

  /// Appends to the calling thread's ring (allocating / adopting a buffer
  /// on first use).  Hot callers go through TraceSpan instead.
  void Append(const SpanRecord& record) { ThisThreadBuffer().Push(record); }

  /// Drains every ring into the retained timeline.  Called by the engine
  /// after each serial commit and at run end; safe from any thread.
  void Drain();

  /// Drains, then moves the retained timeline out (names and lanes are
  /// copied; drop counters reset).  The next TakeTimeline() starts empty.
  [[nodiscard]] Timeline TakeTimeline();

  /// Drops all pending and retained spans and zeroes drop counters.  The
  /// intern table and lane labels survive — callers cache interned ids in
  /// static locals, so ids must stay valid for the process lifetime.
  void ResetForTesting();

  /// Number of rings ever allocated (peak concurrent producers, thanks to
  /// the adoption free list).  Test-only observability.
  [[nodiscard]] std::size_t BufferCountForTesting();

  /// Internal: thread-exit hook returning a ring to the adoption free list.
  /// Called only by the trace_span.cc thread_local destructor.
  void ReleaseBuffer(SpanBuffer* buffer);

 private:
  SpanBuffer& ThisThreadBuffer();
  void DrainBufferLocked(SpanBuffer& buffer);

  std::mutex mutex_;
  std::vector<std::unique_ptr<SpanBuffer>> buffers_;
  std::vector<SpanBuffer*> free_;  ///< Released by exited threads; adoptable.
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  std::vector<std::string> lanes_;  ///< Indexed by tid.
  std::vector<TimelineSpan> drained_;
  std::uint32_t next_tid_ = 0;
};

/// Shorthand for SpanCollector::Global().InternName(name).
[[nodiscard]] std::uint32_t InternSpanName(std::string_view name);

/// RAII span.  Disabled cost: one relaxed load + one predicted branch (or
/// zero loads with the two-argument form and a hoisted `enabled`).
class TraceSpan {
 public:
  explicit TraceSpan(std::uint32_t name_id) noexcept
      : TraceSpan(name_id, TracingEnabled()) {}

  /// `enabled` is typically TracingEnabled() hoisted outside a loop.
  TraceSpan(std::uint32_t name_id, bool enabled) noexcept
      : enabled_(enabled), name_id_(name_id),
        begin_(enabled ? NowNanos() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (enabled_) Commit();
  }

 private:
  void Commit() noexcept;

  const bool enabled_;
  const std::uint32_t name_id_;
  const std::uint64_t begin_;
};

}  // namespace hotspots::obs
