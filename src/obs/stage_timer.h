// Scoped stage timers, gated by HOTSPOTS_OBS_TIMERS.
//
// Timing the probe pipeline per stage costs two or three clock reads per
// probe — two orders of magnitude more than the ~65 ns probe itself — so
// timers are strictly opt-in: set HOTSPOTS_OBS_TIMERS=1 to enable.  The
// env var is read once and cached in a plain atomic; disabled callers pay
// a single well-predicted branch (hot loops hoist StageTimersEnabled()
// into a local const and skip the clock reads entirely, so the
// micro_hotpath gate holds the disabled-path cost under 2%).
//
// Timers observe, never steer: no simulation state depends on a timer
// value, so runs are bit-identical with timers on or off
// (tests/obs_determinism_test.cc).
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace hotspots::obs {

/// True when HOTSPOTS_OBS_TIMERS is set to a non-empty value other than
/// "0" (or a test override is active).  First call reads the environment;
/// later calls are one relaxed atomic load.
[[nodiscard]] bool StageTimersEnabled() noexcept;

/// Test hook: -1 restores the environment-derived value, 0/1 force
/// disabled/enabled.  Not thread-safe against concurrent first-use.
void SetStageTimersForTesting(int forced) noexcept;

/// Monotonic nanoseconds (steady clock).
[[nodiscard]] inline std::uint64_t NowNanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII stage span: accumulates elapsed nanoseconds into `nanos` and bumps
/// `calls` once, but only when stage timers are enabled.  For hot loops,
/// prefer manual NowNanos() deltas gathered into locals and folded into
/// counters once per run — this class is for step- or run-granularity
/// spans.
class ScopedStageTimer {
 public:
  ScopedStageTimer(Counter& nanos, Counter& calls) noexcept
      : nanos_(nanos), calls_(calls), enabled_(StageTimersEnabled()),
        start_(enabled_ ? NowNanos() : 0) {}

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  ~ScopedStageTimer() {
    if (!enabled_) return;
    nanos_.Add(NowNanos() - start_);
    calls_.Increment();
  }

 private:
  Counter& nanos_;
  Counter& calls_;
  const bool enabled_;
  const std::uint64_t start_;
};

}  // namespace hotspots::obs
