// Process-wide metrics: counters, gauges, fixed-bucket histograms.
//
// The paper's Section-5 numbers are statistical aggregates over thousands
// of Monte-Carlo trials, and the performance work on this codebase (PR 2's
// 2.15× hot-path win) is only trustworthy if instrumentation does not
// perturb the phenomenon being measured — the same constraint the
// hyper-compact connection-failure estimators literature runs under.  The
// design rules here follow from that:
//
//   * Counters are sharded: each thread increments one of kShards
//     cache-line-padded relaxed-atomic cells picked by a thread-local slot,
//     so parallel study trials never contend on a line.  A read sums the
//     shards — exact once writers are quiescent, a valid momentary lower
//     bound while they are not (each shard is monotone, so successive
//     snapshots never go backwards).
//   * Nothing here is ever read *by* the simulation: metrics flow strictly
//     sim → registry, which keeps engine runs bit-identical with metrics
//     attached or not (tests/obs_determinism_test.cc pins this).
//   * Hot paths fold local tallies in batch (once per engine run, per
//     observer batch, per trial) instead of per probe; the registry's maps
//     and mutex are touched only on name lookup, which callers do once and
//     cache the returned reference (metric objects are never invalidated).
//
// Histogram bucket semantics (pinned by tests/obs_metrics_test.cc): bucket
// i counts values v with bounds[i-1] < v ≤ bounds[i] — upper bounds are
// INCLUSIVE, lower bounds exclusive; bucket 0 is v ≤ bounds[0] and one
// implicit overflow bucket holds v > bounds.back().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hotspots::obs {

/// Monotonic counter with per-thread sharded cells.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;  // Power of two.

  void Add(std::uint64_t delta) noexcept;
  void Increment() noexcept { Add(1); }

  /// Sum of all shards (relaxed loads): exact when no writer is mid-flight,
  /// otherwise a momentary lower bound that never decreases between reads.
  [[nodiscard]] std::uint64_t Value() const noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Last-written value; Set/SetMax/SetMin race benignly (atomic CAS).
class Gauge {
 public:
  void Set(double value) noexcept;
  /// Keeps the larger / smaller of the current and given value.  An unset
  /// gauge (never written) adopts the first value either way.
  void SetMax(double value) noexcept;
  void SetMin(double value) noexcept;

  /// True once any Set/SetMax/SetMin has run — including Set(NaN), which is
  /// a legitimate written value, not "never written" (an explicit flag
  /// tracks writes precisely so the NaN initializer is not a sentinel).
  [[nodiscard]] bool has_value() const noexcept;
  /// NaN when never written (and after an explicit Set(NaN)).
  [[nodiscard]] double Value() const noexcept;

 private:
  std::atomic<double> value_{std::numeric_limits<double>::quiet_NaN()};
  std::atomic<bool> written_{false};
};

/// Fixed-bucket histogram (see the boundary semantics in the file header).
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending (throws otherwise).
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> BucketCounts() const;
  [[nodiscard]] std::uint64_t Count() const noexcept;
  [[nodiscard]] double Sum() const noexcept;
  /// NaN when empty.
  [[nodiscard]] double Min() const noexcept;
  [[nodiscard]] double Max() const noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::quiet_NaN()};
  std::atomic<double> max_{std::numeric_limits<double>::quiet_NaN()};
};

/// `count` ascending upper bounds starting at `start`, each `factor` times
/// the previous — the usual latency-histogram shape.
[[nodiscard]] std::vector<double> ExponentialBounds(double start,
                                                    double factor, int count);

// ---------------------------------------------------------------------------
// Snapshot: a consistent-enough point-in-time copy for export.

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< NaN when count == 0.
  double max = 0.0;  ///< NaN when count == 0.
};

/// Name-sorted samples of every registered metric.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] const CounterSample* FindCounter(std::string_view name) const;
  [[nodiscard]] const GaugeSample* FindGauge(std::string_view name) const;
  [[nodiscard]] const HistogramSample* FindHistogram(
      std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Registry.

/// Named metric registry.  Get* registers on first use and returns a
/// reference that stays valid for the registry's lifetime; callers on hot
/// paths resolve once and keep the reference.
class Registry {
 public:
  /// The process-wide registry (never destroyed).
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`.
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds);

  [[nodiscard]] Snapshot TakeSnapshot() const;

  /// Drops every registered metric.  Only for test isolation — references
  /// handed out earlier dangle after this.
  void ResetForTesting();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hotspots::obs
