#include "net/special_ranges.h"

#include <array>

namespace hotspots::net {

std::span<const Prefix> PrivateRanges() {
  static constexpr std::array<Prefix, 3> kRanges = {kPrivate10, kPrivate172,
                                                    kPrivate192};
  return kRanges;
}

}  // namespace hotspots::net
