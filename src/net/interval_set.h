// Disjoint-interval containers over the 32-bit IPv4 address space.
//
// `IntervalSet` answers membership ("is this address monitored / filtered /
// allocated?") in O(log n).  `IntervalMap<T>` additionally attaches a value
// to each interval (e.g. a sensor id or an organization id).  Both are built
// once and then queried from the hot probe loop, so queries avoid any
// allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace hotspots::net {

/// A closed interval [lo, hi] of host-order addresses.
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{hi} - lo + 1;
  }
  [[nodiscard]] constexpr bool Contains(std::uint32_t x) const {
    return lo <= x && x <= hi;
  }
  friend constexpr auto operator<=>(const Interval&, const Interval&) = default;
};

/// How much of a queried range an IntervalSet covers.
enum class Coverage : std::uint8_t { kNone, kPartial, kFull };

/// A set of addresses stored as sorted, disjoint, merged intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Adds [lo, hi] (closed).  Intervals may be added in any order and may
  /// overlap; they are merged by Build().
  void Add(std::uint32_t lo, std::uint32_t hi);
  void Add(Interval interval) { Add(interval.lo, interval.hi); }
  void Add(const Prefix& prefix) {
    Add(prefix.first().value(), prefix.last().value());
  }

  /// Sorts and merges overlapping/adjacent intervals.  Must be called after
  /// the last Add() and before queries; queries on an unbuilt set throw.
  void Build();

  /// O(log n) membership test.  Requires Build().
  [[nodiscard]] bool Contains(Ipv4 address) const;

  /// Classifies how much of [query.lo, query.hi] the set covers.  Because
  /// Build() merges overlapping *and* adjacent intervals, full coverage is
  /// equivalent to one merged interval containing the whole query.  An
  /// empty set covers nothing; otherwise requires Build().
  [[nodiscard]] Coverage CoverageOf(Interval query) const;

  /// Total number of addresses covered.  Requires Build().
  [[nodiscard]] std::uint64_t TotalAddresses() const { return total_; }

  /// The merged intervals in ascending order.  Requires Build().
  [[nodiscard]] const std::vector<Interval>& intervals() const {
    RequireBuilt();
    return intervals_;
  }

  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] bool built() const { return built_; }

 private:
  void RequireBuilt() const {
    if (!built_) throw std::logic_error("IntervalSet: Build() not called");
  }

  std::vector<Interval> intervals_;
  std::uint64_t total_ = 0;
  bool built_ = false;
};

/// Sorted disjoint intervals, each carrying a value.  Unlike IntervalSet,
/// overlapping inserts are an error: the caller is mapping *distinct* regions
/// (sensor blocks, org allocations) to identities.
template <typename T>
class IntervalMap {
 public:
  struct Entry {
    Interval interval;
    T value;
  };

  /// Adds a mapping for [lo, hi].
  void Add(std::uint32_t lo, std::uint32_t hi, T value) {
    entries_.push_back(Entry{Interval{lo, hi}, std::move(value)});
    built_ = false;
  }
  void Add(const Prefix& prefix, T value) {
    Add(prefix.first().value(), prefix.last().value(), std::move(value));
  }

  /// Sorts entries and verifies disjointness.  Throws std::invalid_argument
  /// if two entries overlap.
  void Build() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                return a.interval.lo < b.interval.lo;
              });
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].interval.lo <= entries_[i - 1].interval.hi) {
        throw std::invalid_argument("IntervalMap: overlapping intervals");
      }
    }
    built_ = true;
  }

  /// Returns a pointer to the value covering `address`, or nullptr.
  /// O(log n); requires Build().
  [[nodiscard]] const T* Lookup(Ipv4 address) const {
    if (!built_) throw std::logic_error("IntervalMap: Build() not called");
    const std::uint32_t x = address.value();
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), x,
        [](std::uint32_t v, const Entry& e) { return v < e.interval.lo; });
    if (it == entries_.begin()) return nullptr;
    --it;
    return it->interval.Contains(x) ? &it->value : nullptr;
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
  bool built_ = false;
};

}  // namespace hotspots::net
