// IPv4 address value type.
//
// The whole library manipulates IPv4 addresses as 32-bit host-order
// integers.  `Ipv4` is a thin strong type around that integer with parsing,
// formatting, octet access, and ordering.  It is trivially copyable and
// suitable for use as a key in hash maps and in tight probe loops.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace hotspots::net {

/// A single IPv4 address, stored in host byte order.
class Ipv4 {
 public:
  /// Default-constructs 0.0.0.0.
  constexpr Ipv4() = default;

  /// Constructs from a host-order 32-bit value.
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}

  /// Constructs from four octets: Ipv4(192,168,0,1) == "192.168.0.1".
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("10.1.2.3").  Returns std::nullopt on any
  /// syntax error (missing octets, values > 255, stray characters).
  static std::optional<Ipv4> Parse(std::string_view text);

  /// The host-order 32-bit value.
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// Octet `i` (0 is the most significant, i.e. the first in dotted quad).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// All four octets, most significant first.
  [[nodiscard]] constexpr std::array<std::uint8_t, 4> octets() const {
    return {octet(0), octet(1), octet(2), octet(3)};
  }

  /// Dotted-quad representation.
  [[nodiscard]] std::string ToString() const;

  /// The /24 index of this address (top 24 bits).  Used pervasively for the
  /// paper's per-/24 observation histograms.
  [[nodiscard]] constexpr std::uint32_t Slash24() const { return value_ >> 8; }

  /// The /16 index of this address (top 16 bits).
  [[nodiscard]] constexpr std::uint32_t Slash16() const { return value_ >> 16; }

  /// The /8 index of this address (top 8 bits).
  [[nodiscard]] constexpr std::uint32_t Slash8() const { return value_ >> 24; }

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4 address);

}  // namespace hotspots::net

template <>
struct std::hash<hotspots::net::Ipv4> {
  std::size_t operator()(hotspots::net::Ipv4 address) const noexcept {
    // Fibonacci hashing; adequate for uniformly distributed addresses and
    // cheap enough for the probe loop.
    return static_cast<std::size_t>(address.value()) * 0x9E3779B97F4A7C15ull;
  }
};
