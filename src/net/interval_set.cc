#include "net/interval_set.h"

namespace hotspots::net {

void IntervalSet::Add(std::uint32_t lo, std::uint32_t hi) {
  if (lo > hi) throw std::invalid_argument("IntervalSet: lo > hi");
  intervals_.push_back(Interval{lo, hi});
  built_ = false;
}

void IntervalSet::Build() {
  std::sort(intervals_.begin(), intervals_.end());
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  for (const Interval& interval : intervals_) {
    // Merge when overlapping or exactly adjacent (hi + 1 == lo), taking care
    // not to overflow at 255.255.255.255.
    if (!merged.empty() &&
        (interval.lo <= merged.back().hi ||
         (merged.back().hi != ~std::uint32_t{0} &&
          interval.lo == merged.back().hi + 1))) {
      merged.back().hi = std::max(merged.back().hi, interval.hi);
    } else {
      merged.push_back(interval);
    }
  }
  intervals_ = std::move(merged);
  total_ = 0;
  for (const Interval& interval : intervals_) total_ += interval.size();
  built_ = true;
}

bool IntervalSet::Contains(Ipv4 address) const {
  RequireBuilt();
  const std::uint32_t x = address.value();
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](std::uint32_t v, const Interval& i) { return v < i.lo; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(x);
}

Coverage IntervalSet::CoverageOf(Interval query) const {
  if (intervals_.empty()) return Coverage::kNone;
  RequireBuilt();
  // First merged interval ending at or after the query's start.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), query.lo,
      [](const Interval& interval, std::uint32_t lo) {
        return interval.hi < lo;
      });
  if (it == intervals_.end() || it->lo > query.hi) return Coverage::kNone;
  return it->lo <= query.lo && it->hi >= query.hi ? Coverage::kFull
                                                  : Coverage::kPartial;
}

}  // namespace hotspots::net
