// Registry of special-purpose IPv4 ranges.
//
// Worm targeting algorithms and the paper's environmental analysis care
// about a handful of well-known ranges: RFC 1918 private space (the NAT
// analysis of Section 4.3 revolves around 192.168.0.0/16), loopback,
// multicast, and reserved space.  This module provides them as constants
// plus convenience predicates.
#pragma once

#include <span>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace hotspots::net {

/// 10.0.0.0/8 (RFC 1918).
inline constexpr Prefix kPrivate10{Ipv4{10, 0, 0, 0}, 8};
/// 172.16.0.0/12 (RFC 1918).
inline constexpr Prefix kPrivate172{Ipv4{172, 16, 0, 0}, 12};
/// 192.168.0.0/16 (RFC 1918) — the only private /16 inside 192.0.0.0/8,
/// which is what makes the CodeRedII hotspot of Section 4.3.1 possible.
inline constexpr Prefix kPrivate192{Ipv4{192, 168, 0, 0}, 16};
/// 127.0.0.0/8 loopback.
inline constexpr Prefix kLoopback{Ipv4{127, 0, 0, 0}, 8};
/// 224.0.0.0/4 multicast.
inline constexpr Prefix kMulticast{Ipv4{224, 0, 0, 0}, 4};
/// 240.0.0.0/4 reserved ("class E").
inline constexpr Prefix kReserved{Ipv4{240, 0, 0, 0}, 4};
/// 0.0.0.0/8 ("this network").
inline constexpr Prefix kThisNetwork{Ipv4{0, 0, 0, 0}, 8};

/// The three RFC 1918 private ranges.
[[nodiscard]] std::span<const Prefix> PrivateRanges();

/// True for any RFC 1918 private address.
[[nodiscard]] constexpr bool IsPrivate(Ipv4 address) {
  return kPrivate10.Contains(address) || kPrivate172.Contains(address) ||
         kPrivate192.Contains(address);
}

/// True for loopback addresses.
[[nodiscard]] constexpr bool IsLoopback(Ipv4 address) {
  return kLoopback.Contains(address);
}

/// True for multicast (class D) addresses.
[[nodiscard]] constexpr bool IsMulticast(Ipv4 address) {
  return kMulticast.Contains(address);
}

/// True for addresses that can never be a unicast target on the public
/// Internet: 0/8, loopback, multicast, class E.  Private space is *not*
/// included — private addresses are routable inside a site, which is exactly
/// the behaviour the NAT experiments depend on.
[[nodiscard]] constexpr bool IsNonTargetable(Ipv4 address) {
  return kThisNetwork.Contains(address) || IsLoopback(address) ||
         IsMulticast(address) || kReserved.Contains(address);
}

}  // namespace hotspots::net
