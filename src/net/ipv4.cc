#include "net/ipv4.h"

#include <charconv>
#include <ostream>

namespace hotspots::net {

std::optional<Ipv4> Ipv4::Parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* const end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(cursor, end, octet);
    if (ec != std::errc{} || next == cursor || octet > 255) {
      return std::nullopt;
    }
    // Reject leading zeros longer than one digit ("01") to stay strict.
    if (next - cursor > 1 && *cursor == '0') return std::nullopt;
    value = (value << 8) | octet;
    cursor = next;
  }
  if (cursor != end) return std::nullopt;
  return Ipv4{value};
}

std::string Ipv4::ToString() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4 address) {
  return os << address.ToString();
}

}  // namespace hotspots::net
