#include "net/prefix.h"

#include <charconv>
#include <ostream>

namespace hotspots::net {

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    const auto address = Ipv4::Parse(text);
    if (!address) return std::nullopt;
    return Prefix{*address, 32};
  }
  const auto address = Ipv4::Parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const std::string_view length_text = text.substr(slash + 1);
  int length = -1;
  auto [next, ec] = std::from_chars(
      length_text.data(), length_text.data() + length_text.size(), length);
  if (ec != std::errc{} || next != length_text.data() + length_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Prefix{*address, length};
}

std::string Prefix::ToString() const {
  return base().ToString() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.ToString();
}

}  // namespace hotspots::net
