// Direct-mapped per-/16 interval index — the alternative lookup backend.
//
// DESIGN.md's sensor-lookup ablation: the default IntervalMap answers
// address→value with a binary search over all intervals (O(log n), cache
// misses grow with fleet size).  Slash16Index trades 256 KiB of bucket
// headers for O(1) bucket selection: intervals are sliced per /16, each
// bucket holding a (usually tiny) sorted run.  For 10,000-sensor fleets
// this turns the per-probe lookup into one indexed load plus a scan of at
// most a handful of entries.  Semantics match IntervalMap exactly
// (disjoint intervals, Build() validation); equivalence is enforced by a
// differential property test.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/interval_set.h"

namespace hotspots::net {

template <typename T>
class Slash16Index {
 public:
  /// Adds a mapping for [lo, hi].  Overlaps are rejected by Build().
  void Add(std::uint32_t lo, std::uint32_t hi, T value) {
    if (lo > hi) throw std::invalid_argument("Slash16Index: lo > hi");
    pending_.push_back(Entry{Interval{lo, hi}, std::move(value)});
    built_ = false;
  }
  void Add(const Prefix& prefix, T value) {
    Add(prefix.first().value(), prefix.last().value(), std::move(value));
  }

  /// Validates disjointness and slices every interval into the /16 buckets
  /// it touches.
  void Build() {
    std::sort(pending_.begin(), pending_.end(),
              [](const Entry& a, const Entry& b) {
                return a.interval.lo < b.interval.lo;
              });
    for (std::size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i].interval.lo <= pending_[i - 1].interval.hi) {
        throw std::invalid_argument("Slash16Index: overlapping intervals");
      }
    }
    bucket_offsets_.assign(kBuckets + 1, 0);
    // Count slices per bucket, then fill (two-pass, flat storage).
    std::vector<std::uint32_t> counts(kBuckets, 0);
    for (const Entry& entry : pending_) {
      for (std::uint32_t b = entry.interval.lo >> 16;
           b <= entry.interval.hi >> 16; ++b) {
        ++counts[b];
      }
    }
    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      bucket_offsets_[b] = static_cast<std::uint32_t>(total);
      total += counts[b];
    }
    bucket_offsets_[kBuckets] = static_cast<std::uint32_t>(total);
    slices_.assign(total, Slice{});
    std::vector<std::uint32_t> cursor(bucket_offsets_.begin(),
                                      bucket_offsets_.end() - 1);
    for (std::uint32_t e = 0; e < pending_.size(); ++e) {
      const Interval& interval = pending_[e].interval;
      for (std::uint32_t b = interval.lo >> 16; b <= interval.hi >> 16; ++b) {
        // Clip to the bucket so Lookup never needs cross-bucket logic.
        const std::uint32_t bucket_lo = b << 16;
        const std::uint32_t bucket_hi = bucket_lo | 0xFFFFu;
        slices_[cursor[b]++] = Slice{
            static_cast<std::uint16_t>(std::max(interval.lo, bucket_lo)),
            static_cast<std::uint16_t>(std::min(interval.hi, bucket_hi)), e};
      }
    }
    built_ = true;
  }

  /// Returns the value covering `address`, or nullptr.
  [[nodiscard]] const T* Lookup(Ipv4 address) const {
    if (!built_) throw std::logic_error("Slash16Index: Build() not called");
    const std::uint32_t bucket = address.value() >> 16;
    const auto low = static_cast<std::uint16_t>(address.value());
    const std::uint32_t begin = bucket_offsets_[bucket];
    const std::uint32_t end = bucket_offsets_[bucket + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      if (low >= slices_[i].lo && low <= slices_[i].hi) {
        return &pending_[slices_[i].entry].value;
      }
    }
    return nullptr;
  }

  /// Prefetches the bucket header `address` maps to.  Issued a few events
  /// ahead in batched observation loops, it overlaps the random-access load
  /// of the 256 KiB offset table with other work.  No-op before Build().
  void PrefetchLookup(Ipv4 address) const {
    if (!built_) return;
    __builtin_prefetch(&bucket_offsets_[address.value() >> 16], 0, 1);
  }

  [[nodiscard]] std::size_t size() const { return pending_.size(); }

 private:
  static constexpr std::uint32_t kBuckets = 1u << 16;

  struct Entry {
    Interval interval;
    T value;
  };
  struct Slice {
    std::uint16_t lo = 0;
    std::uint16_t hi = 0;
    std::uint32_t entry = 0;
  };

  std::vector<Entry> pending_;
  std::vector<std::uint32_t> bucket_offsets_;
  std::vector<Slice> slices_;
  bool built_ = false;
};

}  // namespace hotspots::net
