// CIDR prefix value type.
//
// A `Prefix` is an aligned power-of-two block of IPv4 addresses, e.g.
// 192.168.0.0/16.  The darknet sensor blocks, hit-list entries, filtering
// rules, and private ranges in this library are all prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.h"

namespace hotspots::net {

/// An aligned CIDR block.  Invariant: the host bits of `base()` are zero.
class Prefix {
 public:
  /// Default-constructs 0.0.0.0/0 (the whole IPv4 space).
  constexpr Prefix() = default;

  /// Constructs from a base address and prefix length.  Host bits of `base`
  /// are masked off, so Prefix(Ipv4(10,1,2,3), 8) == 10.0.0.0/8.
  constexpr Prefix(Ipv4 base, int length)
      : base_(base.value() & MaskFor(length)), length_(length) {}

  /// Parses "a.b.c.d/len".  A bare address parses as a /32.
  static std::optional<Prefix> Parse(std::string_view text);

  /// The (masked) base address of the block.
  [[nodiscard]] constexpr Ipv4 base() const { return Ipv4{base_}; }

  /// The prefix length in [0, 32].
  [[nodiscard]] constexpr int length() const { return length_; }

  /// Number of addresses covered.  /0 covers 2^32 which still fits uint64.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// First address in the block (== base()).
  [[nodiscard]] constexpr Ipv4 first() const { return Ipv4{base_}; }

  /// Last address in the block.
  [[nodiscard]] constexpr Ipv4 last() const {
    return Ipv4{base_ | ~MaskFor(length_)};
  }

  /// True if `address` falls inside this block.
  [[nodiscard]] constexpr bool Contains(Ipv4 address) const {
    return (address.value() & MaskFor(length_)) == base_;
  }

  /// True if `other` is fully contained in this block.
  [[nodiscard]] constexpr bool Contains(const Prefix& other) const {
    return other.length_ >= length_ && Contains(other.base());
  }

  /// True if the two blocks share any address.
  [[nodiscard]] constexpr bool Overlaps(const Prefix& other) const {
    return Contains(other) || other.Contains(*this);
  }

  /// The i-th address of the block; `i` must be < size().
  [[nodiscard]] constexpr Ipv4 AddressAt(std::uint64_t i) const {
    return Ipv4{base_ + static_cast<std::uint32_t>(i)};
  }

  /// "a.b.c.d/len".
  [[nodiscard]] std::string ToString() const;

  /// The netmask for a prefix length, e.g. MaskFor(24) == 0xFFFFFF00.
  [[nodiscard]] static constexpr std::uint32_t MaskFor(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  std::uint32_t base_ = 0;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

}  // namespace hotspots::net

template <>
struct std::hash<hotspots::net::Prefix> {
  std::size_t operator()(const hotspots::net::Prefix& prefix) const noexcept {
    return std::hash<hotspots::net::Ipv4>{}(prefix.base()) ^
           (static_cast<std::size_t>(prefix.length()) << 1);
  }
};
