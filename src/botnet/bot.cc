#include "botnet/bot.h"

namespace hotspots::botnet {

std::unique_ptr<sim::Worm> MakeWormForCommand(const BotCommand& command) {
  return MakeWormForPrefixes({command.TargetPrefix()});
}

std::unique_ptr<sim::Worm> MakeWormForPrefixes(
    std::vector<net::Prefix> prefixes) {
  return std::make_unique<worms::HitListWorm>(std::move(prefixes));
}

}  // namespace hotspots::botnet
