// Bot controller: the command channel side of a botnet.
//
// Reproduces the measurement setting of Section 4.2.1: a controller sends
// propagation commands over an IRC-style channel; bots that receive a
// command begin scanning the commanded range.  The controller here is a
// command *generator* — it produces a realistic stream of channel traffic
// (chatter plus propagation commands drawn from a configurable repertoire)
// that the passive capture pipeline then has to pick the commands out of.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "botnet/command.h"
#include "prng/xoshiro.h"

namespace hotspots::botnet {

/// One line of captured channel traffic.
struct ChannelLine {
  double time = 0.0;       ///< Capture timestamp (seconds).
  std::string channel;     ///< "#owned", etc.
  std::string text;        ///< Payload as it would appear on the wire.
};

/// Command repertoire entry: a template the controller issues.
struct CommandTemplate {
  Dialect dialect = Dialect::kRbot;
  std::string module;
  std::string pattern;              ///< e.g. "194.s.s.s", "x.x.x".
  std::vector<std::string> flags;   ///< e.g. {"-s"}.
};

/// The repertoire used to regenerate Table 1: the module/pattern mixes the
/// paper captured from ~11 bots over a month (dcom2-dominant, a few /8
/// hit-lists including 194/8, 192/8, 128/8, plus unrestricted scans).
[[nodiscard]] std::vector<CommandTemplate> PaperCommandRepertoire();

class BotController {
 public:
  BotController(std::string channel, std::vector<CommandTemplate> repertoire,
                std::uint64_t seed);

  /// Emits channel traffic over `duration_seconds`: roughly
  /// `commands` propagation commands mixed into `chatter_lines` of benign
  /// chatter, timestamped in order.
  [[nodiscard]] std::vector<ChannelLine> EmitTraffic(double duration_seconds,
                                                     int commands,
                                                     int chatter_lines);

  /// Renders one freshly drawn propagation command.
  [[nodiscard]] std::string DrawCommandText();

 private:
  std::string channel_;
  std::vector<CommandTemplate> repertoire_;
  prng::Xoshiro256 rng_;
};

}  // namespace hotspots::botnet
