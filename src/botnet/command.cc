#include "botnet/command.h"

#include <charconv>

namespace hotspots::botnet {
namespace {

/// Known exploit module names across the three captured families.
constexpr std::string_view kKnownModules[] = {
    "dcom2", "dcom135", "dcass",  "lsass",     "mssql2000",
    "webdav3", "wkssvceng", "netbios", "sym", "optix",
};

[[nodiscard]] bool IsKnownModule(std::string_view token) {
  for (const std::string_view module : kKnownModules) {
    if (token == module) return true;
  }
  return false;
}

[[nodiscard]] bool IsWildcardToken(std::string_view token) {
  if (token.size() != 1) return false;
  const char c = token[0];
  return c == 'i' || c == 's' || c == 'r' || c == 'x' || c == 'b';
}

/// Splits on whitespace.
[[nodiscard]] std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

std::string_view ToString(Dialect dialect) {
  switch (dialect) {
    case Dialect::kAgobot: return "agobot";
    case Dialect::kRbot: return "rbot";
  }
  return "unknown";
}

std::optional<TargetPattern> TargetPattern::Parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  TargetPattern pattern;
  pattern.original_ = std::string{text};
  std::size_t cursor = 0;
  while (cursor <= text.size()) {
    const std::size_t dot = text.find('.', cursor);
    const std::string_view token =
        text.substr(cursor, (dot == std::string_view::npos ? text.size() : dot) -
                                cursor);
    if (token.empty()) return std::nullopt;
    PatternOctet octet;
    if (IsWildcardToken(token)) {
      octet.pinned = false;
    } else {
      unsigned value = 0;
      auto [next, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec != std::errc{} || next != token.data() + token.size() ||
          value > 255) {
        return std::nullopt;
      }
      octet.pinned = true;
      octet.value = static_cast<std::uint8_t>(value);
    }
    pattern.octets_.push_back(octet);
    if (pattern.octets_.size() > 4) return std::nullopt;
    if (dot == std::string_view::npos) break;
    cursor = dot + 1;
  }
  return pattern;
}

int TargetPattern::PinnedLeadingOctets() const {
  int pinned = 0;
  for (const PatternOctet& octet : octets_) {
    if (!octet.pinned) break;
    ++pinned;
  }
  return pinned;
}

net::Prefix TargetPattern::ToPrefix() const {
  std::uint32_t base = 0;
  const int pinned = PinnedLeadingOctets();
  for (int i = 0; i < pinned; ++i) {
    base |= static_cast<std::uint32_t>(octets_[static_cast<std::size_t>(i)].value)
            << (8 * (3 - i));
  }
  return net::Prefix{net::Ipv4{base}, pinned * 8};
}

std::string TargetPattern::ToString() const { return original_; }

std::optional<BotCommand> ParseBotCommand(std::string_view line) {
  auto tokens = Tokenize(line);
  if (tokens.empty()) return std::nullopt;

  // Strip an IRC-style control prefix ('.advscan', '!ipscan').
  std::string_view verb = tokens[0];
  if (!verb.empty() && (verb[0] == '.' || verb[0] == '!')) {
    verb.remove_prefix(1);
  }

  BotCommand command;
  command.raw = std::string{line};

  if (verb == "advscan") {
    // advscan <module> <pattern?> [flags...] — some captured commands omit
    // the pattern entirely ("advscan lsass b"): trailing single-letter
    // tokens are wildcard markers, not patterns.
    if (tokens.size() < 2) return std::nullopt;
    command.dialect = Dialect::kAgobot;
    command.module = std::string{tokens[1]};
    if (!IsKnownModule(command.module)) return std::nullopt;
    std::size_t next = 2;
    if (next < tokens.size() && tokens[next][0] != '-') {
      if (auto pattern = TargetPattern::Parse(tokens[next])) {
        command.pattern = *pattern;
        ++next;
      } else {
        return std::nullopt;
      }
    } else {
      command.pattern = *TargetPattern::Parse("x.x.x.x");
    }
    for (; next < tokens.size(); ++next) {
      command.flags.emplace_back(tokens[next]);
    }
    return command;
  }

  if (verb == "ipscan") {
    // ipscan <pattern> <module> [flags...]
    if (tokens.size() < 3) return std::nullopt;
    command.dialect = Dialect::kRbot;
    auto pattern = TargetPattern::Parse(tokens[1]);
    if (!pattern) return std::nullopt;
    command.pattern = *pattern;
    command.module = std::string{tokens[2]};
    if (!IsKnownModule(command.module)) return std::nullopt;
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      command.flags.emplace_back(tokens[i]);
    }
    return command;
  }

  return std::nullopt;
}

std::string FormatBotCommand(const BotCommand& command) {
  std::string out;
  if (command.dialect == Dialect::kAgobot) {
    out = "advscan " + command.module + " " + command.pattern.ToString();
  } else {
    out = "ipscan " + command.pattern.ToString() + " " + command.module;
  }
  for (const std::string& flag : command.flags) {
    out += " " + flag;
  }
  return out;
}

}  // namespace hotspots::botnet
