#include "botnet/controller.h"

#include <algorithm>
#include <stdexcept>

namespace hotspots::botnet {
namespace {

constexpr std::string_view kChatter[] = {
    "lol did you see that",
    "uptime 4d 12h",
    "JOIN",
    "PING :irc.example.net",
    "anyone got the new build",
    "QUIT :timeout",
    "MODE +o operator",
    "brb",
};

}  // namespace

std::vector<CommandTemplate> PaperCommandRepertoire() {
  // Mirrors the mix in Table 1: mostly rbot-style ipscan with dcom2, a few
  // pinned-/8 hit-lists (194, 192, 128), plus lsass / mssql2000 / webdav3 /
  // wkssvceng / dcass modules and fully wildcarded patterns.
  return {
      {Dialect::kRbot, "dcom2", "i.i.i.i", {"-s"}},
      {Dialect::kRbot, "dcom2", "s.s.s.s", {"-s"}},
      {Dialect::kRbot, "dcom2", "r.r.r.r", {"-s"}},
      {Dialect::kRbot, "dcom2", "194.s.s.s", {"-s"}},
      {Dialect::kRbot, "dcom2", "192.s.s.s", {"-s"}},
      {Dialect::kRbot, "dcom2", "128.s.s.s", {"-s"}},
      {Dialect::kRbot, "dcom2", "s.s", {}},
      {Dialect::kRbot, "mssql2000", "s.s", {"-s"}},
      {Dialect::kRbot, "lsass", "s.s.s", {"-s"}},
      {Dialect::kRbot, "webdav3", "s.s", {"-s"}},
      {Dialect::kAgobot, "wkssvceng", "x.x.x.x", {}},
      {Dialect::kAgobot, "dcass", "x.x.x", {}},
      {Dialect::kAgobot, "dcass", "x.x", {}},
      {Dialect::kAgobot, "lsass", "b", {}},
  };
}

BotController::BotController(std::string channel,
                             std::vector<CommandTemplate> repertoire,
                             std::uint64_t seed)
    : channel_(std::move(channel)), repertoire_(std::move(repertoire)),
      rng_(seed) {
  if (repertoire_.empty()) {
    throw std::invalid_argument("BotController: empty repertoire");
  }
}

std::string BotController::DrawCommandText() {
  const CommandTemplate& entry = repertoire_[rng_.UniformBelow(
      static_cast<std::uint32_t>(repertoire_.size()))];
  BotCommand command;
  command.dialect = entry.dialect;
  command.module = entry.module;
  auto pattern = TargetPattern::Parse(entry.pattern);
  if (!pattern) {
    throw std::logic_error("BotController: repertoire pattern invalid: " +
                           entry.pattern);
  }
  command.pattern = *pattern;
  command.flags = entry.flags;
  // Controllers typically prefix commands with the bot's control character.
  return "." + FormatBotCommand(command);
}

std::vector<ChannelLine> BotController::EmitTraffic(double duration_seconds,
                                                    int commands,
                                                    int chatter_lines) {
  if (duration_seconds <= 0 || commands < 0 || chatter_lines < 0) {
    throw std::invalid_argument("BotController::EmitTraffic: bad arguments");
  }
  std::vector<ChannelLine> lines;
  lines.reserve(static_cast<std::size_t>(commands + chatter_lines));
  for (int i = 0; i < commands; ++i) {
    lines.push_back(ChannelLine{rng_.NextDouble() * duration_seconds, channel_,
                                DrawCommandText()});
  }
  for (int i = 0; i < chatter_lines; ++i) {
    lines.push_back(ChannelLine{
        rng_.NextDouble() * duration_seconds, channel_,
        std::string{kChatter[rng_.UniformBelow(std::size(kChatter))]}});
  }
  std::sort(lines.begin(), lines.end(),
            [](const ChannelLine& a, const ChannelLine& b) {
              return a.time < b.time;
            });
  return lines;
}

}  // namespace hotspots::botnet
