#include "botnet/capture.h"

#include <algorithm>

namespace hotspots::botnet {

std::optional<BotCommand> SignatureCapture::Feed(const ChannelLine& line) {
  ++lines_scanned_;
  // Cheap signature pre-filter (what a network monitor greps payloads for),
  // then the strict parse.
  if (line.text.find("advscan") == std::string::npos &&
      line.text.find("ipscan") == std::string::npos) {
    return std::nullopt;
  }
  auto command = ParseBotCommand(line.text);
  if (!command) return std::nullopt;
  log_.push_back(CapturedCommand{line.time, *command});
  return command;
}

void SignatureCapture::FeedAll(const std::vector<ChannelLine>& lines) {
  for (const ChannelLine& line : lines) Feed(line);
}

std::vector<net::Prefix> SignatureCapture::CommandedPrefixes() const {
  std::vector<net::Prefix> prefixes;
  for (const CapturedCommand& entry : log_) {
    prefixes.push_back(entry.command.TargetPrefix());
  }
  std::sort(prefixes.begin(), prefixes.end(),
            [](const net::Prefix& a, const net::Prefix& b) {
              if (a.length() != b.length()) return a.length() > b.length();
              return a.base() < b.base();
            });
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  return prefixes;
}

}  // namespace hotspots::botnet
