// Passive bot-command capture (the measurement side of Section 4.2.1).
//
// The paper "looked for the specific command signatures of Agobot/Phatbot,
// rbot/sdbot, and Ghost-Bot in the payload of traffic captured in a large
// academic network".  SignatureCapture is that pipeline: it scans captured
// channel lines for the known propagation verbs, parses the hits with the
// strict grammar, and accumulates the command log that becomes Table 1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "botnet/command.h"
#include "botnet/controller.h"

namespace hotspots::botnet {

/// One capture-log entry.
struct CapturedCommand {
  double time = 0.0;
  BotCommand command;
};

class SignatureCapture {
 public:
  /// Feeds one line of captured traffic; records it if it parses as a
  /// propagation command.  Returns the parsed command when matched.
  std::optional<BotCommand> Feed(const ChannelLine& line);

  /// Feeds a whole capture.
  void FeedAll(const std::vector<ChannelLine>& lines);

  [[nodiscard]] const std::vector<CapturedCommand>& log() const {
    return log_;
  }

  /// Lines scanned so far (matched or not).
  [[nodiscard]] std::uint64_t lines_scanned() const { return lines_scanned_; }

  /// Distinct hit-list prefixes commanded, most specific first.
  [[nodiscard]] std::vector<net::Prefix> CommandedPrefixes() const;

 private:
  std::vector<CapturedCommand> log_;
  std::uint64_t lines_scanned_ = 0;
};

}  // namespace hotspots::botnet
