// Bot execution: turning a captured command into scanning behaviour.
//
// Closes the loop between the command grammar and the epidemic simulator: a
// commanded bot is simply a host running a hit-list worm whose hit-list is
// the command's target prefix.  The Section-5.2 experiments use this to
// release "a worm that uses a list of prefixes" built from observed bot
// targeting behaviour.
#pragma once

#include <memory>

#include "botnet/command.h"
#include "sim/targeting.h"
#include "worms/hitlist.h"

namespace hotspots::botnet {

/// A worm whose targeting obeys `command`'s pattern.  Commands with no
/// pinned leading octet scan the whole space uniformly.
[[nodiscard]] std::unique_ptr<sim::Worm> MakeWormForCommand(
    const BotCommand& command);

/// A worm scanning the union of several commanded prefixes (a botnet acting
/// on its whole command log).
[[nodiscard]] std::unique_ptr<sim::Worm> MakeWormForPrefixes(
    std::vector<net::Prefix> prefixes);

}  // namespace hotspots::botnet
