// Bot propagation-command grammar (Section 4.2.1, Table 1).
//
// Bots wait for commands from a controller before propagating.  The paper
// captured commands of the Agobot/Phatbot family ("advscan ...") and the
// rbot/sdbot family ("ipscan ...") on a live /15 academic network; each
// command names an exploit module and a *target pattern* with per-octet
// wildcards:
//
//     ipscan  194.s.s.s dcom2 -s      →  scan 194.0.0.0/8 with DCOM2
//     advscan dcass     x.x.x         →  scan everything (no pinned octet)
//     ipscan  s.s       mssql2000 -s  →  scan everything
//
// A literal octet pins that byte of the target; a wildcard letter
// (i/s/r/x/b — dialect-dependent spellings of "random") leaves it free.
// Pinned leading octets therefore define a hit-list prefix: this is the
// mechanism by which botnets create hotspots on demand.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/prefix.h"

namespace hotspots::botnet {

/// Which bot family's dialect a command is written in.
enum class Dialect : std::uint8_t {
  kAgobot,  ///< "advscan <module> <pattern> [flags]"
  kRbot,    ///< "ipscan <pattern> <module> [flags]"
};

[[nodiscard]] std::string_view ToString(Dialect dialect);

/// One octet of a target pattern: pinned to a value or wildcard.
struct PatternOctet {
  bool pinned = false;
  std::uint8_t value = 0;
};

/// A dotted target pattern like "194.s.s.s" or "x.x.x".  Patterns shorter
/// than four octets leave the remaining octets wildcard.
class TargetPattern {
 public:
  /// Parses a dotted pattern.  Accepted wildcard letters: i, s, r, x, b.
  /// Returns nullopt on malformed input (empty, >4 octets, bad tokens).
  [[nodiscard]] static std::optional<TargetPattern> Parse(
      std::string_view text);

  /// The hit-list prefix implied by the *leading* pinned octets.  A pattern
  /// with no leading pinned octet covers the whole space (0.0.0.0/0).
  /// Interior pinned octets after a wildcard are rare and treated as
  /// wildcard (matching observed bot behaviour, which scans sequentially
  /// from a random start inside the leading prefix).
  [[nodiscard]] net::Prefix ToPrefix() const;

  /// Number of leading pinned octets (0..4).
  [[nodiscard]] int PinnedLeadingOctets() const;

  [[nodiscard]] const std::vector<PatternOctet>& octets() const {
    return octets_;
  }
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<PatternOctet> octets_;
  std::string original_;
};

/// A fully parsed propagation command.
struct BotCommand {
  Dialect dialect = Dialect::kAgobot;
  std::string module;  ///< Exploit module: dcom2, lsass, mssql2000, ...
  TargetPattern pattern;
  std::vector<std::string> flags;  ///< e.g. "-s", "-r", "-b".
  std::string raw;                 ///< The command text as captured.

  /// The hit-list this command restricts propagation to.
  [[nodiscard]] net::Prefix TargetPrefix() const { return pattern.ToPrefix(); }
};

/// Parses one command line ("advscan ..." / "ipscan ...", with or without a
/// leading '.' control prefix).  Returns nullopt if the line is not a
/// well-formed propagation command.
[[nodiscard]] std::optional<BotCommand> ParseBotCommand(std::string_view line);

/// Renders a command in its dialect's canonical syntax.
[[nodiscard]] std::string FormatBotCommand(const BotCommand& command);

}  // namespace hotspots::botnet
