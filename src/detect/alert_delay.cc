#include "detect/alert_delay.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prng/splitmix.h"

namespace hotspots::detect {
namespace {

/// Domain separator: per-sensor delay draws must not collide with any
/// other consumer of the schedule seed (fault streams, outage stagger).
constexpr std::uint64_t kAlertDelaySalt = 0xA1E27DE1A75ull;

}  // namespace

AlertDelayQueue::AlertDelayQueue(double min_delay, double max_delay,
                                 std::uint64_t seed)
    : min_delay_(min_delay), max_delay_(max_delay), seed_(seed) {
  if (!(min_delay >= 0.0) || !(max_delay >= min_delay) ||
      !std::isfinite(max_delay)) {
    throw std::invalid_argument(
        "AlertDelayQueue: want 0 <= min <= max with finite max");
  }
}

double AlertDelayQueue::DelayFor(int sensor_index) const {
  if (max_delay_ == min_delay_) return min_delay_;
  const std::uint64_t bits = prng::Mix64(
      seed_ ^ kAlertDelaySalt ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sensor_index)) +
       1));
  const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return min_delay_ + unit * (max_delay_ - min_delay_);
}

void AlertDelayQueue::Push(int sensor_index, double sense_time) {
  pending_.push_back(ReportTime(sensor_index, sense_time));
}

std::vector<double> AlertDelayQueue::PopDueBy(double now) {
  std::vector<double> due;
  auto keep = pending_.begin();
  for (double report_time : pending_) {
    if (report_time <= now) {
      due.push_back(report_time);
    } else {
      *keep++ = report_time;
    }
  }
  pending_.erase(keep, pending_.end());
  std::sort(due.begin(), due.end());
  return due;
}

std::vector<double> AlertDelayQueue::DrainSorted() {
  std::vector<double> all = std::move(pending_);
  pending_.clear();
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace hotspots::detect
