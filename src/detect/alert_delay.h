// Detector-side alert-propagation delay (`hotspots.faults.v2`).
//
// The telescope's per-sensor alert times are *sensing* times: the instant
// the sensor's own threshold crossed.  Real distributed detection adds a
// reporting path — batching at the sensor, transport to the aggregator,
// processing queues — so the time a coordination point can act on an
// alert lags the time it was sensed.  AlertDelayQueue models that lag as
// a bounded deterministic per-sensor delay: sensor i reporting an alert
// sensed at t delivers it at t + delay(i), with delay(i) drawn once from
// [min_delay, max_delay] as a pure function of (seed, sensor index).
//
// Determinism: no state is consulted other than (seed, index), so the
// same schedule reproduces the same report times for any feed order, any
// thread count, and any subset of alerting sensors — a sensor's delay
// never depends on *which other* sensors alerted.
#pragma once

#include <cstdint>
#include <vector>

namespace hotspots::detect {

/// Bounded deterministic alert-propagation delay queue.
class AlertDelayQueue {
 public:
  /// Delays are uniform in [min_delay, max_delay]; both must be finite
  /// with 0 <= min <= max (throws std::invalid_argument otherwise).
  AlertDelayQueue(double min_delay, double max_delay, std::uint64_t seed);

  /// The delay sensor `sensor_index` adds to every alert it reports.
  /// Pure function of (seed, sensor_index).
  [[nodiscard]] double DelayFor(int sensor_index) const;

  /// The report (delivery) time of an alert sensed at `sense_time` by
  /// sensor `sensor_index`.
  [[nodiscard]] double ReportTime(int sensor_index, double sense_time) const {
    return sense_time + DelayFor(sensor_index);
  }

  /// Enqueues one sensed alert.
  void Push(int sensor_index, double sense_time);

  /// Alerts whose report time is due by `now`, in ascending report-time
  /// order; removed from the queue.
  [[nodiscard]] std::vector<double> PopDueBy(double now);

  /// Every queued report time in ascending order; empties the queue.
  [[nodiscard]] std::vector<double> DrainSorted();

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  double min_delay_;
  double max_delay_;
  std::uint64_t seed_;
  std::vector<double> pending_;  ///< Report times, unordered until drain.
};

}  // namespace hotspots::detect
