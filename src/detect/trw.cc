#include "detect/trw.h"

#include "obs/metrics.h"

namespace hotspots::detect {

TrwDetector::TrwDetector(TrwConfig config) : config_(config) {
  const auto in_unit = [](double x) { return x > 0.0 && x < 1.0; };
  if (!in_unit(config.benign_success_rate) ||
      !in_unit(config.scanner_success_rate) ||
      !in_unit(config.false_positive_rate) ||
      !in_unit(config.detection_rate)) {
    throw std::invalid_argument("TrwDetector: rates must be in (0,1)");
  }
  if (config.scanner_success_rate >= config.benign_success_rate) {
    throw std::invalid_argument(
        "TrwDetector: scanners must fail more often than benign sources");
  }
  log_success_update_ =
      std::log(config.scanner_success_rate / config.benign_success_rate);
  log_failure_update_ = std::log((1.0 - config.scanner_success_rate) /
                                 (1.0 - config.benign_success_rate));
  log_eta1_ = std::log(config.detection_rate / config.false_positive_rate);
  log_eta0_ =
      std::log((1.0 - config.detection_rate) /
               (1.0 - config.false_positive_rate));
}

TrwVerdict TrwDetector::Observe(double time, net::Ipv4 src, bool success) {
  Walk& walk = walks_[src.value()];
  if (walk.verdict != TrwVerdict::kPending) return walk.verdict;
  walk.log_ratio += success ? log_success_update_ : log_failure_update_;
  ++walk.observations;
  if (walk.log_ratio >= log_eta1_) {
    walk.verdict = TrwVerdict::kScanner;
    walk.decided_at = time;
    ++scanners_;
    // Decisions happen once per source — cold enough to fold immediately.
    auto& registry = obs::Registry::Global();
    registry.GetCounter("detect.trw.scanners").Increment();
    registry.GetGauge("detect.trw.first_flag_seconds").SetMin(time);
  } else if (walk.log_ratio <= log_eta0_) {
    walk.verdict = TrwVerdict::kBenign;
    walk.decided_at = time;
    ++benign_;
    obs::Registry::Global().GetCounter("detect.trw.benign").Increment();
  }
  return walk.verdict;
}

TrwVerdict TrwDetector::VerdictFor(net::Ipv4 src) const {
  const auto it = walks_.find(src.value());
  return it == walks_.end() ? TrwVerdict::kPending : it->second.verdict;
}

std::optional<double> TrwDetector::ScannerFlagTime(net::Ipv4 src) const {
  const auto it = walks_.find(src.value());
  if (it == walks_.end() || it->second.verdict != TrwVerdict::kScanner) {
    return std::nullopt;
  }
  return it->second.decided_at;
}

std::uint32_t TrwDetector::ObservationsToDecision(net::Ipv4 src) const {
  const auto it = walks_.find(src.value());
  if (it == walks_.end() || it->second.verdict == TrwVerdict::kPending) {
    return 0;
  }
  return it->second.observations;
}

}  // namespace hotspots::detect
