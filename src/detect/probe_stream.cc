#include "detect/probe_stream.h"

#include <stdexcept>
#include <utility>

#include "topology/reachability.h"

namespace hotspots::detect {

TrwGatewayObserver::TrwGatewayObserver(net::IntervalSet live_space,
                                       TrwGatewayConfig config)
    : live_space_(std::move(live_space)),
      watched_sources_(config.watched_sources),
      detector_(config.trw) {}

void TrwGatewayObserver::OnAttach() {
  if (!live_space_.built()) {
    throw std::logic_error(
        "TrwGatewayObserver: live_space must be Build()-t before attach");
  }
}

void TrwGatewayObserver::OnProbe(const sim::ProbeEvent& event) {
  ++probes_seen_;
  if (event.delivery != topology::Delivery::kDelivered) return;
  if (!watched_sources_.Contains(event.src_address)) return;
  const bool success = live_space_.Contains(event.dst);
  ++probes_fed_;
  const TrwVerdict verdict =
      detector_.Observe(event.time, event.src_address, success);
  if (verdict == TrwVerdict::kScanner && !first_alert_time_.has_value()) {
    first_alert_time_ = detector_.ScannerFlagTime(event.src_address);
  }
}

PrevalenceStreamObserver::PrevalenceStreamObserver(PrevalenceStreamConfig config)
    : config_(config), detector_(config.prevalence) {}

void TrwGatewayObserver::OnProbeBatch(
    std::span<const sim::ProbeEvent> events) {
  // The engine's shard commit hands whole per-shard runs of events; fold
  // the seen-counter once per batch and touch the detector only for the
  // delivered, watched subset.  Equivalent event-for-event to OnProbe(),
  // so live, sharded, and replayed streams agree.
  probes_seen_ += events.size();
  for (const sim::ProbeEvent& event : events) {
    if (event.delivery != topology::Delivery::kDelivered) continue;
    if (!watched_sources_.Contains(event.src_address)) continue;
    const bool success = live_space_.Contains(event.dst);
    ++probes_fed_;
    const TrwVerdict verdict =
        detector_.Observe(event.time, event.src_address, success);
    if (verdict == TrwVerdict::kScanner && !first_alert_time_.has_value()) {
      first_alert_time_ = detector_.ScannerFlagTime(event.src_address);
    }
  }
}

void PrevalenceStreamObserver::OnProbe(const sim::ProbeEvent& event) {
  if (event.delivery != topology::Delivery::kDelivered) return;
  detector_.Observe(event.time, config_.content_id, event.src_address,
                    event.dst);
}

void PrevalenceStreamObserver::OnProbeBatch(
    std::span<const sim::ProbeEvent> events) {
  for (const sim::ProbeEvent& event : events) {
    if (event.delivery == topology::Delivery::kDelivered) {
      detector_.Observe(event.time, config_.content_id, event.src_address,
                        event.dst);
    }
  }
}

// -- Two-phase sharded fold ----------------------------------------------
//
// Detector state is order-sensitive (TRW verdicts are sticky; prevalence
// alerts depend on exact set sizes), so shards never touch the detectors:
// they stage the filtered detector inputs in emission order and the serial
// merge replays them shard-major — exactly the committed stream order, so
// verdicts and first-alert times are bit-identical to a serial run.  The
// parallel win is everything before the detector: the per-event filters,
// the live-space membership resolution, and the seen tallies.

class TrwGatewayObserver::ShardState final : public sim::ObserverShardState {
 public:
  struct FedRecord {
    double time;
    std::uint32_t src;
    bool success;
  };
  std::vector<FedRecord> fed;       ///< Step-scoped; drained by the merge.
  std::uint64_t probes_seen = 0;    ///< Run-scoped; drained by finalize.
};

std::unique_ptr<sim::ObserverShardState> TrwGatewayObserver::ForkShardState(
    int /*shard*/) {
  return std::make_unique<ShardState>();
}

void TrwGatewayObserver::OnShardBatch(sim::ObserverShardState& state_base,
                                      std::span<const sim::ProbeEvent> events) {
  auto& state = static_cast<ShardState&>(state_base);
  state.probes_seen += events.size();
  for (const sim::ProbeEvent& event : events) {
    if (event.delivery != topology::Delivery::kDelivered) continue;
    if (!watched_sources_.Contains(event.src_address)) continue;
    state.fed.push_back(ShardState::FedRecord{
        event.time, event.src_address.value(),
        live_space_.Contains(event.dst)});
  }
}

void TrwGatewayObserver::MergeShardStates(
    std::span<sim::ObserverShardState* const> states) {
  for (sim::ObserverShardState* state_base : states) {
    auto& state = static_cast<ShardState&>(*state_base);
    for (const ShardState::FedRecord& record : state.fed) {
      const net::Ipv4 src{record.src};
      ++probes_fed_;
      const TrwVerdict verdict =
          detector_.Observe(record.time, src, record.success);
      if (verdict == TrwVerdict::kScanner && !first_alert_time_.has_value()) {
        first_alert_time_ = detector_.ScannerFlagTime(src);
      }
    }
    state.fed.clear();
  }
}

void TrwGatewayObserver::FinalizeShardStates(
    std::span<sim::ObserverShardState* const> states) {
  for (sim::ObserverShardState* state_base : states) {
    auto& state = static_cast<ShardState&>(*state_base);
    probes_seen_ += state.probes_seen;
    state.probes_seen = 0;
  }
}

class PrevalenceStreamObserver::ShardState final
    : public sim::ObserverShardState {
 public:
  struct DeliveredRecord {
    double time;
    std::uint32_t src;
    std::uint32_t dst;
  };
  std::vector<DeliveredRecord> delivered;  ///< Step-scoped.
};

std::unique_ptr<sim::ObserverShardState>
PrevalenceStreamObserver::ForkShardState(int /*shard*/) {
  return std::make_unique<ShardState>();
}

void PrevalenceStreamObserver::OnShardBatch(
    sim::ObserverShardState& state_base,
    std::span<const sim::ProbeEvent> events) {
  auto& state = static_cast<ShardState&>(state_base);
  for (const sim::ProbeEvent& event : events) {
    if (event.delivery != topology::Delivery::kDelivered) continue;
    state.delivered.push_back(ShardState::DeliveredRecord{
        event.time, event.src_address.value(), event.dst.value()});
  }
}

void PrevalenceStreamObserver::MergeShardStates(
    std::span<sim::ObserverShardState* const> states) {
  for (sim::ObserverShardState* state_base : states) {
    auto& state = static_cast<ShardState&>(*state_base);
    for (const ShardState::DeliveredRecord& record : state.delivered) {
      detector_.Observe(record.time, config_.content_id,
                        net::Ipv4{record.src}, net::Ipv4{record.dst});
    }
    state.delivered.clear();
  }
}

}  // namespace hotspots::detect
