#include "detect/probe_stream.h"

#include <stdexcept>
#include <utility>

#include "topology/reachability.h"

namespace hotspots::detect {

TrwGatewayObserver::TrwGatewayObserver(net::IntervalSet live_space,
                                       TrwGatewayConfig config)
    : live_space_(std::move(live_space)),
      watched_sources_(config.watched_sources),
      detector_(config.trw) {}

void TrwGatewayObserver::OnAttach() {
  if (!live_space_.built()) {
    throw std::logic_error(
        "TrwGatewayObserver: live_space must be Build()-t before attach");
  }
}

void TrwGatewayObserver::OnProbe(const sim::ProbeEvent& event) {
  ++probes_seen_;
  if (event.delivery != topology::Delivery::kDelivered) return;
  if (!watched_sources_.Contains(event.src_address)) return;
  const bool success = live_space_.Contains(event.dst);
  ++probes_fed_;
  const TrwVerdict verdict =
      detector_.Observe(event.time, event.src_address, success);
  if (verdict == TrwVerdict::kScanner && !first_alert_time_.has_value()) {
    first_alert_time_ = detector_.ScannerFlagTime(event.src_address);
  }
}

PrevalenceStreamObserver::PrevalenceStreamObserver(PrevalenceStreamConfig config)
    : config_(config), detector_(config.prevalence) {}

void TrwGatewayObserver::OnProbeBatch(
    std::span<const sim::ProbeEvent> events) {
  // The engine's shard commit hands whole per-shard runs of events; fold
  // the seen-counter once per batch and touch the detector only for the
  // delivered, watched subset.  Equivalent event-for-event to OnProbe(),
  // so live, sharded, and replayed streams agree.
  probes_seen_ += events.size();
  for (const sim::ProbeEvent& event : events) {
    if (event.delivery != topology::Delivery::kDelivered) continue;
    if (!watched_sources_.Contains(event.src_address)) continue;
    const bool success = live_space_.Contains(event.dst);
    ++probes_fed_;
    const TrwVerdict verdict =
        detector_.Observe(event.time, event.src_address, success);
    if (verdict == TrwVerdict::kScanner && !first_alert_time_.has_value()) {
      first_alert_time_ = detector_.ScannerFlagTime(event.src_address);
    }
  }
}

void PrevalenceStreamObserver::OnProbe(const sim::ProbeEvent& event) {
  if (event.delivery != topology::Delivery::kDelivered) return;
  detector_.Observe(event.time, config_.content_id, event.src_address,
                    event.dst);
}

void PrevalenceStreamObserver::OnProbeBatch(
    std::span<const sim::ProbeEvent> events) {
  for (const sim::ProbeEvent& event : events) {
    if (event.delivery == topology::Delivery::kDelivered) {
      detector_.Observe(event.time, config_.content_id, event.src_address,
                        event.dst);
    }
  }
}

}  // namespace hotspots::detect
