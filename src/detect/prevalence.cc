#include "detect/prevalence.h"

#include "obs/metrics.h"

namespace hotspots::detect {

bool ContentPrevalenceDetector::Observe(double time, std::uint64_t content,
                                        net::Ipv4 src, net::Ipv4 dst) {
  Entry& entry = contents_[content];
  ++entry.occurrences;
  entry.sources.insert(src.value());
  entry.destinations.insert(dst.value());
  if (!entry.alert_time &&
      entry.occurrences >= config_.prevalence_threshold &&
      entry.sources.size() >= config_.min_sources &&
      entry.destinations.size() >= config_.min_destinations) {
    entry.alert_time = time;
    ++flagged_;
    // Signature alerts are rare (once per content), so folding straight
    // into the registry costs nothing measurable.
    auto& registry = obs::Registry::Global();
    registry.GetCounter("detect.prevalence.alerts").Increment();
    registry.GetGauge("detect.prevalence.first_alert_seconds").SetMin(time);
    return true;
  }
  return false;
}

std::optional<double> ContentPrevalenceDetector::AlertTime(
    std::uint64_t content) const {
  const auto it = contents_.find(content);
  return it == contents_.end() ? std::nullopt : it->second.alert_time;
}

ContentPrevalenceDetector::ContentStats
ContentPrevalenceDetector::StatsFor(std::uint64_t content) const {
  const auto it = contents_.find(content);
  if (it == contents_.end()) return {};
  return ContentStats{it->second.occurrences,
                      static_cast<std::uint32_t>(it->second.sources.size()),
                      static_cast<std::uint32_t>(
                          it->second.destinations.size())};
}

}  // namespace hotspots::detect
