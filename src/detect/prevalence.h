// Content-prevalence worm detection (Autograph, EarlyBird — the paper's
// references [12] and [24]).
//
// These systems flag a byte pattern as a worm signature when it becomes
// *prevalent* (seen many times) with high *address dispersion* (many
// distinct sources and destinations).  Section 5 of the paper argues that
// hotspots make the alerts of such systems "highly inaccurate": detectors
// at different vantage points observe wildly different prevalence for the
// same threat, so the quorum of a distributed deployment may never agree.
//
// The detector is content-agnostic: callers feed (content-id, src, dst)
// triples — in this library the content id is the worm's payload identity;
// in the real systems it is a Rabin-fingerprinted substring.  Address
// dispersion uses exact sets (experiments are bounded); the production
// systems' sketches would only make dispersion estimates noisier.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "net/ipv4.h"

namespace hotspots::detect {

/// EarlyBird-style thresholds: all three must hold to flag content.
struct PrevalenceConfig {
  std::uint64_t prevalence_threshold = 50;  ///< Total occurrences.
  std::uint32_t min_sources = 10;           ///< Distinct source addresses.
  std::uint32_t min_destinations = 10;      ///< Distinct destinations.
};

class ContentPrevalenceDetector {
 public:
  explicit ContentPrevalenceDetector(PrevalenceConfig config = {})
      : config_(config) {}

  /// Feeds one observed payload instance.  Returns true the first time
  /// `content` crosses all three thresholds (the signature alert).
  bool Observe(double time, std::uint64_t content, net::Ipv4 src,
               net::Ipv4 dst);

  /// Alert time for `content`, if it was ever flagged.
  [[nodiscard]] std::optional<double> AlertTime(std::uint64_t content) const;

  /// Current statistics for `content` (zeros if never seen).
  struct ContentStats {
    std::uint64_t occurrences = 0;
    std::uint32_t sources = 0;
    std::uint32_t destinations = 0;
  };
  [[nodiscard]] ContentStats StatsFor(std::uint64_t content) const;

  [[nodiscard]] std::size_t flagged_count() const { return flagged_; }
  [[nodiscard]] const PrevalenceConfig& config() const { return config_; }

 private:
  struct Entry {
    std::uint64_t occurrences = 0;
    std::unordered_set<std::uint32_t> sources;
    std::unordered_set<std::uint32_t> destinations;
    std::optional<double> alert_time;
  };

  PrevalenceConfig config_;
  std::unordered_map<std::uint64_t, Entry> contents_;
  std::size_t flagged_ = 0;
};

}  // namespace hotspots::detect
