// Probe-stream adapters: feed the detectors from a sim::ProbeObserver.
//
// The detectors in this module (TRW, content prevalence) consume abstract
// (time, src, dst, outcome) observations; the engine and the trace replayer
// both speak sim::ProbeEvent.  These adapters bridge the two, with one hard
// requirement: every detector input must be a *pure function of the event*.
// No population lookups, no engine state — only fields carried in the
// ProbeEvent plus configuration fixed at construction.  That invariant is
// what makes capture → replay reproduce bit-identical detector verdicts and
// alert times (the trace file stores exactly the event fields).
//
// Connection "success" is therefore modeled structurally: a probe succeeds
// iff it was delivered AND its destination lies in the configured live
// address space (the set of addresses where something answers).  Probes
// into unallocated/darknet space fail, which is precisely the asymmetry TRW
// exploits.
// Sharded runs: both adapters implement sim::MergeableObserver.  The
// worker-thread pre-fold does everything that is a pure per-event function
// — the seen tally, the watched-source and live-space filters — and stages
// the surviving detector inputs in emission order; the serial merge then
// replays just those staged records into the (order-sensitive) detector in
// committed shard-major order, so verdicts, alert thresholds, and
// first-alert times are bit-identical to a serial run at any shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "detect/prevalence.h"
#include "detect/trw.h"
#include "net/interval_set.h"
#include "net/prefix.h"
#include "sim/observer.h"

namespace hotspots::detect {

/// Configuration for a TrwGatewayObserver.
struct TrwGatewayConfig {
  /// Detector parameters (Wald thresholds etc.).
  TrwConfig trw;
  /// Only probes whose (post-NAT) source lies in this prefix are fed to the
  /// detector — the gateway watches one organization's egress.  The default
  /// /0 prefix watches every source.
  net::Prefix watched_sources;
};

/// A TRW portscan gateway driven directly by the probe stream.  Attachable
/// to a live Engine::Run and to trace::Replay interchangeably; because the
/// success predicate is a pure function of the event, both paths yield the
/// same verdicts, flag times, and counters for the same stream.
class TrwGatewayObserver final : public sim::ProbeObserver,
                                 public sim::MergeableObserver {
 public:
  /// `live_space` is the set of destination addresses where a connection
  /// can succeed; it must be Build()-t (checked at OnAttach).
  TrwGatewayObserver(net::IntervalSet live_space, TrwGatewayConfig config = {});

  void OnAttach() override;
  void OnProbe(const sim::ProbeEvent& event) override;
  /// Batch fast path for the engine's shard-commit spans: same verdicts
  /// and counters as the per-event path, with the seen-tally folded once.
  void OnProbeBatch(std::span<const sim::ProbeEvent> events) override;

  // -- Two-phase sharded fold (sim::MergeableObserver) -------------------
  // Pre-fold filters to the delivered/watched subset and resolves the
  // success predicate (all pure per-event functions) on worker threads;
  // the merge replays the staged records into the sticky-verdict detector
  // in committed order.
  [[nodiscard]] sim::MergeableObserver* AsMergeable() override { return this; }
  [[nodiscard]] std::unique_ptr<sim::ObserverShardState> ForkShardState(
      int shard) override;
  void OnShardBatch(sim::ObserverShardState& state,
                    std::span<const sim::ProbeEvent> events) override;
  void MergeShardStates(
      std::span<sim::ObserverShardState* const> states) override;
  void FinalizeShardStates(
      std::span<sim::ObserverShardState* const> states) override;

  /// Earliest time any watched source was flagged SCANNER.
  [[nodiscard]] std::optional<double> first_alert_time() const {
    return first_alert_time_;
  }
  [[nodiscard]] std::uint64_t probes_seen() const { return probes_seen_; }
  [[nodiscard]] std::uint64_t probes_fed() const { return probes_fed_; }
  [[nodiscard]] const TrwDetector& detector() const { return detector_; }

 private:
  class ShardState;

  net::IntervalSet live_space_;
  net::Prefix watched_sources_;
  TrwDetector detector_;
  std::optional<double> first_alert_time_;
  std::uint64_t probes_seen_ = 0;
  std::uint64_t probes_fed_ = 0;
};

/// Configuration for a PrevalenceStreamObserver.
struct PrevalenceStreamConfig {
  PrevalenceConfig prevalence;
  /// Content id fed for every probe (one worm = one payload identity).
  std::uint64_t content_id = 1;
};

/// Feeds a content-prevalence detector from the probe stream: every
/// *delivered* probe counts as one payload instance of `content_id`.
/// Pure function of the event, so live and replayed streams agree.
class PrevalenceStreamObserver final : public sim::ProbeObserver,
                                       public sim::MergeableObserver {
 public:
  explicit PrevalenceStreamObserver(PrevalenceStreamConfig config = {});

  void OnProbe(const sim::ProbeEvent& event) override;
  void OnProbeBatch(std::span<const sim::ProbeEvent> events) override;

  // -- Two-phase sharded fold (sim::MergeableObserver) -------------------
  // Pre-fold stages the delivered (src, dst) pairs per shard; the merge
  // replays them in committed order, since the detector's alert predicate
  // depends on exact set sizes as the stream arrives.
  [[nodiscard]] sim::MergeableObserver* AsMergeable() override { return this; }
  [[nodiscard]] std::unique_ptr<sim::ObserverShardState> ForkShardState(
      int shard) override;
  void OnShardBatch(sim::ObserverShardState& state,
                    std::span<const sim::ProbeEvent> events) override;
  void MergeShardStates(
      std::span<sim::ObserverShardState* const> states) override;

  [[nodiscard]] std::optional<double> alert_time() const {
    return detector_.AlertTime(config_.content_id);
  }
  [[nodiscard]] const ContentPrevalenceDetector& detector() const {
    return detector_;
  }

 private:
  class ShardState;

  PrevalenceStreamConfig config_;
  ContentPrevalenceDetector detector_;
};

}  // namespace hotspots::detect
