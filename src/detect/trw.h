// Threshold Random Walk (TRW) portscan detection — Jung, Paxson, Berger,
// Balakrishnan (the paper's reference [11]), the canonical *local*
// detector.
//
// A scanner's connection attempts mostly fail (it probes addresses with
// nothing there); a benign client's mostly succeed.  TRW runs a sequential
// hypothesis test per source: each outcome multiplies a likelihood ratio,
// and the source is flagged SCANNER or cleared BENIGN when the ratio
// crosses Wald's thresholds derived from the target false-positive /
// detection rates.
//
// The paper's conclusion — "it is critical to invest in local detection
// systems" — is quantified by the detector ablation bench: a TRW gateway
// flags an infected local host after a handful of probes (well under a
// second at 10 probes/s), while hotspot-starved global quorums never fire.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "net/ipv4.h"

namespace hotspots::detect {

/// Hypothesis-test parameters (defaults follow the paper's reference).
struct TrwConfig {
  double benign_success_rate = 0.8;   ///< θ₀: P(success | benign).
  double scanner_success_rate = 0.2;  ///< θ₁: P(success | scanner).
  double false_positive_rate = 0.01;  ///< α.
  double detection_rate = 0.99;       ///< β.
};

/// Per-source verdict.
enum class TrwVerdict : std::uint8_t {
  kPending,
  kBenign,
  kScanner,
};

class TrwDetector {
 public:
  explicit TrwDetector(TrwConfig config = {});

  /// Feeds one connection outcome from `src` at `time`.  Returns the
  /// source's verdict after the update.  Decided sources are sticky: once
  /// SCANNER or BENIGN, further observations don't change the verdict
  /// (matching the reference's per-connection decision process).
  TrwVerdict Observe(double time, net::Ipv4 src, bool success);

  [[nodiscard]] TrwVerdict VerdictFor(net::Ipv4 src) const;

  /// Time the source was flagged as a scanner, if it was.
  [[nodiscard]] std::optional<double> ScannerFlagTime(net::Ipv4 src) const;

  /// Observations consumed before the source was decided (0 if undecided).
  [[nodiscard]] std::uint32_t ObservationsToDecision(net::Ipv4 src) const;

  [[nodiscard]] std::size_t flagged_scanners() const { return scanners_; }
  [[nodiscard]] std::size_t cleared_benign() const { return benign_; }
  [[nodiscard]] const TrwConfig& config() const { return config_; }

  /// Wald thresholds (log-domain), exposed for tests.
  [[nodiscard]] double log_upper_threshold() const { return log_eta1_; }
  [[nodiscard]] double log_lower_threshold() const { return log_eta0_; }

 private:
  struct Walk {
    double log_ratio = 0.0;
    std::uint32_t observations = 0;
    TrwVerdict verdict = TrwVerdict::kPending;
    double decided_at = 0.0;
  };

  TrwConfig config_;
  double log_success_update_;  ///< log(θ₁/θ₀) — negative.
  double log_failure_update_;  ///< log((1−θ₁)/(1−θ₀)) — positive.
  double log_eta1_;            ///< log(β/α).
  double log_eta0_;            ///< log((1−β)/(1−α)).
  std::unordered_map<std::uint32_t, Walk> walks_;
  std::size_t scanners_ = 0;
  std::size_t benign_ = 0;
};

}  // namespace hotspots::detect
