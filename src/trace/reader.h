// Validating, allocation-free `hotspots.trace.v1` reading.
//
// TraceReader iterates a trace file block by block: NextBatch() returns
// the next block's records decoded into a reusable buffer as a span of
// sim::ProbeEvent — after warm-up the read loop performs no allocation,
// mirroring the engine's own batched observer pipeline so replay costs
// what live observation costs.
//
// Every structural invariant is checked and every violation fails closed
// with a TraceError naming the failing structure and file offset: bad
// magic, unsupported version, truncated frames, payload-size bombs, CRC
// mismatches, varint garbage, record-count mismatches, a missing trailer,
// or bytes after it.  A corrupt trace can therefore never crash a replay
// or silently skew an analysis.
//
// Salvage mode (TraceReaderOptions::salvage, opt-in; the default above
// stays fail-closed): a damaged block no longer kills the read.  The
// reader skips the corrupt span, re-locks on the next frame whose CRC
// verifies, and accounts the loss in SalvageStats — skipped blocks,
// records lost (reconciled exactly against the trailer when one
// survives), raw bytes discarded, and whether the trailer itself was
// missing.  Only CRC-verified blocks are ever delivered, so salvage
// changes availability, never integrity.  A corrupt *header* still fails
// closed even in salvage mode: without it nothing in the file can be
// interpreted.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "sim/observer.h"
#include "trace/format.h"

namespace hotspots::trace {

/// Reader behaviour knobs.
struct TraceReaderOptions {
  /// Skip damaged blocks and re-lock on the next valid frame instead of
  /// throwing (loss is accounted in SalvageStats).  Default: fail closed.
  bool salvage = false;
};

/// Damage accounting of a salvage-mode read (all zero on a pristine file).
struct SalvageStats {
  /// Blocks skipped: CRC failures, short payloads, undecodable contents,
  /// malformed trailer candidates.  Reconciled against the trailer's block
  /// total when one survives.
  std::uint64_t corrupt_blocks = 0;
  /// Records in skipped blocks.  Exact when frames are intact (each frame
  /// declares its record count) and reconciled against the trailer's
  /// record total when one survives; a lower bound otherwise.
  std::uint64_t records_lost = 0;
  /// Raw bytes discarded (frames + payloads of skipped blocks, resync
  /// scans, trailing garbage).
  std::uint64_t bytes_skipped = 0;
  /// The stream ended without a CRC-valid trailer.
  bool trailer_missing = false;
  /// A trailer was found but its totals are below what the stream already
  /// delivered — the trailer itself is lying.
  bool trailer_mismatch = false;
  /// Location of the first damaged structure, for diagnostics: the block
  /// sequence index the stream was at (delivered + skipped so far) and the
  /// byte offset where the structure started.  Valid when damaged().
  std::uint64_t first_damage_block = 0;
  std::uint64_t first_damage_offset = 0;
  /// A CRC-valid trailer survived; its declared totals follow.  These are
  /// the *writer's* totals — when blocks were lost they exceed what the
  /// read delivered, which is exactly why tooling wants them (trace_tool
  /// info prints them even when the trailer is the only intact section).
  bool trailer_seen = false;
  std::uint64_t trailer_records = 0;
  std::uint64_t trailer_blocks = 0;

  [[nodiscard]] bool damaged() const {
    return corrupt_blocks != 0 || records_lost != 0 || bytes_skipped != 0 ||
           trailer_missing || trailer_mismatch;
  }
};

/// Summary of a full-file scan (trace_tool info/validate).
struct TraceInfo {
  TraceHeader header;
  std::uint64_t blocks = 0;
  std::uint64_t records = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t file_bytes = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  /// Damage accounting (meaningful for salvage-mode scans).
  SalvageStats salvage;
};

class TraceReader {
 public:
  /// Opens `path` and validates the header.  Throws TraceError if the file
  /// is missing, not a trace, or of an unsupported version.
  explicit TraceReader(const std::string& path);
  TraceReader(const std::string& path, const TraceReaderOptions& options);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  ~TraceReader();

  [[nodiscard]] const TraceHeader& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Decodes the next block.  Returns an empty span once the trailer has
  /// been reached and verified (total record/block counts must match the
  /// stream, and nothing may follow the trailer).  The span aliases an
  /// internal buffer that the next call overwrites.  Throws TraceError on
  /// any corruption.
  [[nodiscard]] std::span<const sim::ProbeEvent> NextBatch();

  /// True once NextBatch() has returned the trailer's empty span.
  [[nodiscard]] bool at_end() const { return at_end_; }

  [[nodiscard]] bool salvage_enabled() const { return options_.salvage; }
  /// Damage accounting so far (only ever non-zero in salvage mode).
  [[nodiscard]] const SalvageStats& salvage_stats() const { return salvage_; }

  /// Records decoded so far.
  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  [[nodiscard]] std::uint64_t blocks_read() const { return blocks_; }
  /// Encoded record bytes consumed so far (excludes header and frames).
  [[nodiscard]] std::uint64_t payload_bytes_read() const {
    return payload_bytes_;
  }
  /// Total file bytes consumed so far.
  [[nodiscard]] std::uint64_t bytes_read() const { return offset_; }

 private:
  [[noreturn]] void Fail(const std::string& what) const;
  /// Records the first-damage location (salvage accounting) and bumps the
  /// corrupt-block tally.  `at_offset` is where the damaged structure
  /// started.
  void NoteCorruptBlock(std::uint64_t at_offset);
  std::size_t ReadUpTo(void* out, std::size_t size);
  void ReadExact(void* out, std::size_t size, const char* what);
  void VerifyTrailer(std::span<const std::uint8_t> payload);
  void DecodeBlock(std::uint32_t record_count,
                   std::span<const std::uint8_t> payload);
  [[nodiscard]] std::span<const sim::ProbeEvent> NextBatchStrict();
  [[nodiscard]] std::span<const sim::ProbeEvent> NextBatchSalvage();
  /// Byte-wise forward scan for the next frame whose CRC verifies,
  /// starting just past `frame_offset`.  Repositions the logical stream at
  /// the found frame and returns true; false at stream end.
  bool Resync(std::uint64_t frame_offset,
              const std::uint8_t (&frame)[kBlockFrameBytes]);
  void FinishRead();

  std::string path_;
  std::FILE* file_ = nullptr;
  TraceHeader header_;
  TraceReaderOptions options_;
  std::uint64_t offset_ = 0;  ///< Bytes consumed; for diagnostics.
  bool at_end_ = false;

  std::vector<std::uint8_t> payload_;      ///< Reused raw block bytes.
  std::vector<sim::ProbeEvent> events_;    ///< Reused decoded batch.
  std::uint64_t records_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t payload_bytes_ = 0;
  SalvageStats salvage_;
  /// Bytes buffered by a salvage resync, drained before the file.
  std::vector<std::uint8_t> pending_;
  std::size_t pending_pos_ = 0;
};

/// Scans `path` end to end — every frame, CRC, and record decoded — and
/// returns the totals.  Throws TraceError on the first violation (or, with
/// options.salvage, skips damage and reports it in the returned
/// TraceInfo::salvage).
[[nodiscard]] TraceInfo ScanTrace(const std::string& path);
[[nodiscard]] TraceInfo ScanTrace(const std::string& path,
                                  const TraceReaderOptions& options);

/// Strict full-file validation for tools: ScanTrace plus the policy that a
/// structurally valid trace carrying *zero records* is itself an error
/// ("validated" must never mean "vacuously empty" — an empty capture is
/// how a misconfigured pipeline looks).  Throws TraceError.
TraceInfo ValidateTraceFile(const std::string& path);

}  // namespace hotspots::trace
