// Validating, allocation-free `hotspots.trace.v1` reading.
//
// TraceReader iterates a trace file block by block: NextBatch() returns
// the next block's records decoded into a reusable buffer as a span of
// sim::ProbeEvent — after warm-up the read loop performs no allocation,
// mirroring the engine's own batched observer pipeline so replay costs
// what live observation costs.
//
// Every structural invariant is checked and every violation fails closed
// with a TraceError naming the failing structure and file offset: bad
// magic, unsupported version, truncated frames, payload-size bombs, CRC
// mismatches, varint garbage, record-count mismatches, a missing trailer,
// or bytes after it.  A corrupt trace can therefore never crash a replay
// or silently skew an analysis.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "sim/observer.h"
#include "trace/format.h"

namespace hotspots::trace {

/// Summary of a full-file scan (trace_tool info/validate).
struct TraceInfo {
  TraceHeader header;
  std::uint64_t blocks = 0;
  std::uint64_t records = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t file_bytes = 0;
  double first_time = 0.0;
  double last_time = 0.0;
};

class TraceReader {
 public:
  /// Opens `path` and validates the header.  Throws TraceError if the file
  /// is missing, not a trace, or of an unsupported version.
  explicit TraceReader(const std::string& path);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  ~TraceReader();

  [[nodiscard]] const TraceHeader& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Decodes the next block.  Returns an empty span once the trailer has
  /// been reached and verified (total record/block counts must match the
  /// stream, and nothing may follow the trailer).  The span aliases an
  /// internal buffer that the next call overwrites.  Throws TraceError on
  /// any corruption.
  [[nodiscard]] std::span<const sim::ProbeEvent> NextBatch();

  /// True once NextBatch() has returned the trailer's empty span.
  [[nodiscard]] bool at_end() const { return at_end_; }

  /// Records decoded so far.
  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  [[nodiscard]] std::uint64_t blocks_read() const { return blocks_; }
  /// Encoded record bytes consumed so far (excludes header and frames).
  [[nodiscard]] std::uint64_t payload_bytes_read() const {
    return payload_bytes_;
  }
  /// Total file bytes consumed so far.
  [[nodiscard]] std::uint64_t bytes_read() const { return offset_; }

 private:
  [[noreturn]] void Fail(const std::string& what) const;
  void ReadExact(void* out, std::size_t size, const char* what);
  void VerifyTrailer(std::span<const std::uint8_t> payload);
  void DecodeBlock(std::uint32_t record_count,
                   std::span<const std::uint8_t> payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  TraceHeader header_;
  std::uint64_t offset_ = 0;  ///< Bytes consumed; for diagnostics.
  bool at_end_ = false;

  std::vector<std::uint8_t> payload_;      ///< Reused raw block bytes.
  std::vector<sim::ProbeEvent> events_;    ///< Reused decoded batch.
  std::uint64_t records_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t payload_bytes_ = 0;
};

/// Scans `path` end to end — every frame, CRC, and record decoded — and
/// returns the totals.  Throws TraceError on the first violation.
[[nodiscard]] TraceInfo ScanTrace(const std::string& path);

}  // namespace hotspots::trace
