// Internal decode helpers shared by the one-shot TraceReader and the
// incremental StreamDecoder (stream_decoder.h).
//
// Both readers walk the same wire structures — little-endian frame words,
// the plausibility ceilings a frame must satisfy before its declared
// payload size is trusted, and the varint/delta record encoding — so the
// logic lives here once.  DecodeRecords returns an error *description*
// ("record 17: malformed varint") instead of throwing: each caller owns
// its own diagnostic framing (file offset for the reader, connection +
// stream offset for the decoder) and prefixes the block index itself.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "sim/observer.h"
#include "trace/format.h"
#include "trace/varint.h"

namespace hotspots::trace::detail {

inline std::uint32_t LoadU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

inline std::uint64_t LoadU64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(LoadU32(in)) |
         static_cast<std::uint64_t>(LoadU32(in + 4)) << 32;
}

inline double BitsToDouble(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

/// Structural plausibility of a block frame: the declared counts must fit
/// the format ceilings before any payload-sized allocation happens.
inline bool PlausibleFrame(std::uint32_t record_count,
                           std::uint32_t payload_bytes) {
  if (record_count > kMaxBlockRecords) return false;
  if (payload_bytes > kMaxBlockPayloadBytes) return false;
  if (record_count != 0 &&
      payload_bytes >
          static_cast<std::uint64_t>(record_count) * kMaxRecordBytes) {
    return false;
  }
  return true;
}

/// Decodes `record_count` delta-predicted records from `payload` into
/// `events` (resized to exactly `record_count`).  Returns "" on success,
/// else a description of the first defect ("record 17: malformed varint").
/// Predictors reset per call — blocks decode independently by design.
inline std::string DecodeRecords(std::uint32_t record_count,
                                 std::span<const std::uint8_t> payload,
                                 std::vector<sim::ProbeEvent>& events) {
  events.resize(record_count);
  const std::uint8_t* cursor = payload.data();
  const std::uint8_t* const end = cursor + payload.size();
  std::uint64_t prev_time_bits = 0;
  std::uint32_t prev_src_host = 0;
  std::uint32_t prev_src_address = 0;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    std::uint64_t time_delta = 0;
    std::uint64_t host_delta = 0;
    std::uint64_t addr_delta = 0;
    std::uint64_t dst_delivery = 0;
    if (!DecodeVarint(&cursor, end, &time_delta) ||
        !DecodeVarint(&cursor, end, &host_delta) ||
        !DecodeVarint(&cursor, end, &addr_delta) ||
        !DecodeVarint(&cursor, end, &dst_delivery)) {
      return "record " + std::to_string(i) + ": malformed varint";
    }
    const std::uint64_t time_bits = prev_time_bits ^ time_delta;
    prev_time_bits = time_bits;
    const std::int64_t src_host =
        static_cast<std::int64_t>(prev_src_host) + ZigZagDecode(host_delta);
    if (src_host < 0 ||
        src_host > static_cast<std::int64_t>(~std::uint32_t{0})) {
      return "record " + std::to_string(i) + ": source host id out of range";
    }
    prev_src_host = static_cast<std::uint32_t>(src_host);
    if (addr_delta > ~std::uint32_t{0}) {
      return "record " + std::to_string(i) + ": source address out of range";
    }
    prev_src_address ^= static_cast<std::uint32_t>(addr_delta);
    const std::uint64_t delivery = dst_delivery & 0x7u;
    const std::uint64_t dst = dst_delivery >> 3;
    if (dst > ~std::uint32_t{0} ||
        delivery >
            static_cast<std::uint64_t>(topology::Delivery::kNetworkLoss)) {
      return "record " + std::to_string(i) +
             ": destination/delivery out of range";
    }
    sim::ProbeEvent& event = events[i];
    event.time = BitsToDouble(time_bits);
    event.src_host = prev_src_host;
    event.src_address = net::Ipv4{prev_src_address};
    event.dst = net::Ipv4{static_cast<std::uint32_t>(dst)};
    event.delivery = static_cast<topology::Delivery>(delivery);
  }
  if (cursor != end) {
    return std::to_string(end - cursor) + " unconsumed payload bytes";
  }
  return {};
}

}  // namespace hotspots::trace::detail
