// Deterministic replay: feed a captured trace into any ProbeObserver.
//
// Replay() mirrors Engine::Run's observer contract exactly — OnAttach()
// once, then OnProbeBatch() per block in stream order — so a telescope,
// TRW gateway, analysis histogram, or tee of all three reproduces
// bit-identical counters and alert times from a file instead of a live
// engine.  This is the offline execution mode the trace corpora,
// cross-run diffing, and external-trace workloads build on.
#pragma once

#include <array>
#include <cstdint>

#include "sim/observer.h"
#include "trace/reader.h"

namespace hotspots::trace {

/// Accounting of one replay, shaped like the slice of sim::RunResult a
/// trace can reconstruct.
struct ReplaySummary {
  std::uint64_t records = 0;
  std::uint64_t blocks = 0;
  /// Probe outcomes indexed by topology::Delivery, as in RunResult.
  std::array<std::uint64_t, 6> delivery_counts{};
  double first_time = 0.0;
  double last_time = 0.0;

  [[nodiscard]] std::uint64_t delivered() const {
    return delivery_counts[static_cast<std::size_t>(
        topology::Delivery::kDelivered)];
  }
};

/// Replays everything remaining in `reader` into `observer`.  Throws
/// TraceError on corrupt input (the observer sees only verified blocks —
/// a CRC failure aborts before the bad batch is delivered).
ReplaySummary Replay(TraceReader& reader, sim::ProbeObserver& observer);

/// Convenience: open + replay in one call.
ReplaySummary ReplayFile(const std::string& path,
                         sim::ProbeObserver& observer);

}  // namespace hotspots::trace
