#include "trace/reader.h"

#include <cstring>

#include "obs/metrics.h"
#include "trace/crc32.h"
#include "trace/record_codec.h"

namespace hotspots::trace {

using detail::BitsToDouble;
using detail::LoadU32;
using detail::LoadU64;

TraceReader::TraceReader(const std::string& path)
    : TraceReader(path, TraceReaderOptions{}) {}

TraceReader::TraceReader(const std::string& path,
                         const TraceReaderOptions& options)
    : path_(path), options_(options) {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    throw TraceError("trace: cannot open " + path_);
  }
  std::uint8_t header[kHeaderBytes];
  ReadExact(header, sizeof header, "file header");
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    Fail("bad magic — not a hotspots.trace file");
  }
  header_.version = LoadU32(header + 8);
  if (header_.version != kFormatVersion) {
    Fail("unsupported format version " + std::to_string(header_.version) +
         " (this reader understands version " +
         std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t header_bytes = LoadU32(header + 12);
  if (header_bytes != kHeaderBytes) {
    Fail("declared header size " + std::to_string(header_bytes) +
         " != " + std::to_string(kHeaderBytes));
  }
  header_.scenario_fingerprint = LoadU64(header + 16);
  header_.seed = LoadU64(header + 24);
  header_.flags = LoadU64(header + 32);
  header_.sample_rate = BitsToDouble(LoadU64(header + 40));
  if (!(header_.sample_rate > 0.0) || header_.sample_rate > 1.0) {
    Fail("sample rate outside (0,1]");
  }
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceReader::Fail(const std::string& what) const {
  throw TraceError("trace: " + path_ + " @byte " + std::to_string(offset_) +
                   ": " + what);
}

void TraceReader::NoteCorruptBlock(std::uint64_t at_offset) {
  if (!salvage_.damaged()) {
    salvage_.first_damage_block = blocks_ + salvage_.corrupt_blocks;
    salvage_.first_damage_offset = at_offset;
  }
  ++salvage_.corrupt_blocks;
}

std::size_t TraceReader::ReadUpTo(void* out, std::size_t size) {
  if (file_ == nullptr) Fail("read after end");
  auto* dst = static_cast<std::uint8_t*>(out);
  std::size_t total = 0;
  // Drain bytes a salvage resync buffered before touching the file again.
  if (pending_pos_ < pending_.size()) {
    const std::size_t take = std::min(size, pending_.size() - pending_pos_);
    std::memcpy(dst, pending_.data() + pending_pos_, take);
    pending_pos_ += take;
    total += take;
    if (pending_pos_ == pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
    }
  }
  if (total < size) {
    total += std::fread(dst + total, 1, size - total, file_);
  }
  offset_ += total;
  return total;
}

void TraceReader::ReadExact(void* out, std::size_t size, const char* what) {
  const std::size_t got = ReadUpTo(out, size);
  if (got != size) {
    offset_ -= got;  // Diagnose at the start of the truncated structure.
    Fail("truncated " + std::string(what) + " (needed " +
         std::to_string(size) + " bytes, got " + std::to_string(got) + ")");
  }
}

void TraceReader::FinishRead() {
  at_end_ = true;
  auto& registry = obs::Registry::Global();
  registry.GetCounter("trace.reader.files").Increment();
  registry.GetCounter("trace.reader.records").Add(records_);
  registry.GetCounter("trace.reader.blocks").Add(blocks_);
  if (salvage_.corrupt_blocks > 0) {
    registry.GetCounter("trace.reader.salvage.corrupt_blocks")
        .Add(salvage_.corrupt_blocks);
  }
  if (salvage_.records_lost > 0) {
    registry.GetCounter("trace.reader.salvage.records_lost")
        .Add(salvage_.records_lost);
  }
  if (salvage_.bytes_skipped > 0) {
    registry.GetCounter("trace.reader.salvage.bytes_skipped")
        .Add(salvage_.bytes_skipped);
  }
}

std::span<const sim::ProbeEvent> TraceReader::NextBatch() {
  if (at_end_) return {};
  return options_.salvage ? NextBatchSalvage() : NextBatchStrict();
}

std::span<const sim::ProbeEvent> TraceReader::NextBatchStrict() {
  const std::string block_tag = " (block " + std::to_string(blocks_) + ")";
  std::uint8_t frame[kBlockFrameBytes];
  ReadExact(frame, sizeof frame, ("block frame" + block_tag).c_str());
  const std::uint32_t record_count = LoadU32(frame);
  const std::uint32_t payload_bytes = LoadU32(frame + 4);
  const std::uint32_t stored_crc = LoadU32(frame + 8);

  if (record_count > kMaxBlockRecords) {
    Fail("block record count " + std::to_string(record_count) +
         " exceeds the format ceiling " + std::to_string(kMaxBlockRecords) +
         block_tag);
  }
  if (payload_bytes > kMaxBlockPayloadBytes) {
    Fail("block payload size " + std::to_string(payload_bytes) +
         " exceeds the format ceiling" + block_tag);
  }
  if (record_count != 0 &&
      payload_bytes > static_cast<std::uint64_t>(record_count) *
                          kMaxRecordBytes) {
    Fail("block payload size " + std::to_string(payload_bytes) +
         " impossible for " + std::to_string(record_count) + " records" +
         block_tag);
  }
  payload_.resize(payload_bytes);
  ReadExact(payload_.data(), payload_bytes,
            record_count == 0 ? "trailer payload"
                              : ("block payload" + block_tag).c_str());
  const std::uint32_t computed_crc = Crc32(payload_.data(), payload_bytes);
  if (computed_crc != stored_crc) {
    Fail((record_count == 0
              ? "trailer (after block " + std::to_string(blocks_) + ")"
              : "block " + std::to_string(blocks_)) +
         " CRC mismatch (stored " + std::to_string(stored_crc) +
         ", computed " + std::to_string(computed_crc) + ")");
  }

  if (record_count == 0) {
    VerifyTrailer(payload_);
    FinishRead();
    return {};
  }

  DecodeBlock(record_count, payload_);
  ++blocks_;
  records_ += record_count;
  payload_bytes_ += payload_bytes;
  return events_;
}

using detail::PlausibleFrame;

bool TraceReader::Resync(std::uint64_t frame_offset,
                         const std::uint8_t (&frame)[kBlockFrameBytes]) {
  // The 12 bytes at frame_offset are not a believable frame.  Slurp the
  // rest of the stream (resyncs are rare — corruption, not steady state)
  // and scan byte-wise for the next candidate whose declared payload fits
  // and whose CRC verifies; a CRC match over a misaligned span is a ~2^-32
  // accident, so a hit is a real re-lock.
  std::vector<std::uint8_t> window(frame, frame + kBlockFrameBytes);
  if (pending_pos_ < pending_.size()) {
    window.insert(window.end(), pending_.begin() + static_cast<std::ptrdiff_t>(
                                                       pending_pos_),
                  pending_.end());
    pending_.clear();
    pending_pos_ = 0;
  }
  constexpr std::size_t kChunk = 1 << 16;
  std::size_t got = kChunk;
  while (got == kChunk) {
    const std::size_t base = window.size();
    window.resize(base + kChunk);
    got = std::fread(window.data() + base, 1, kChunk, file_);
    window.resize(base + got);
  }

  for (std::size_t at = 1; at + kBlockFrameBytes <= window.size(); ++at) {
    const std::uint32_t record_count = LoadU32(window.data() + at);
    const std::uint32_t payload_bytes = LoadU32(window.data() + at + 4);
    const std::uint32_t stored_crc = LoadU32(window.data() + at + 8);
    if (!PlausibleFrame(record_count, payload_bytes)) continue;
    if (at + kBlockFrameBytes + payload_bytes > window.size()) continue;
    if (Crc32(window.data() + at + kBlockFrameBytes, payload_bytes) !=
        stored_crc) {
      continue;
    }
    // Re-locked: everything before `at` is discarded, the rest becomes the
    // logical stream again.
    NoteCorruptBlock(frame_offset);
    salvage_.bytes_skipped += at;
    pending_.assign(window.begin() + static_cast<std::ptrdiff_t>(at),
                    window.end());
    pending_pos_ = 0;
    offset_ = frame_offset + at;
    return true;
  }
  // No believable frame remains.
  NoteCorruptBlock(frame_offset);
  salvage_.bytes_skipped += window.size();
  salvage_.trailer_missing = true;
  offset_ = frame_offset + window.size();
  return false;
}

std::span<const sim::ProbeEvent> TraceReader::NextBatchSalvage() {
  for (;;) {
    const std::uint64_t frame_offset = offset_;
    std::uint8_t frame[kBlockFrameBytes];
    const std::size_t frame_got = ReadUpTo(frame, sizeof frame);
    if (frame_got < sizeof frame) {
      // Stream ends mid-frame (or cleanly after a block, trailer never
      // written): salvage what we have.
      if (frame_got > 0) NoteCorruptBlock(frame_offset);
      salvage_.bytes_skipped += frame_got;
      salvage_.trailer_missing = true;
      FinishRead();
      return {};
    }
    const std::uint32_t record_count = LoadU32(frame);
    const std::uint32_t payload_bytes = LoadU32(frame + 4);
    const std::uint32_t stored_crc = LoadU32(frame + 8);
    if (!PlausibleFrame(record_count, payload_bytes)) {
      if (!Resync(frame_offset, frame)) {
        FinishRead();
        return {};
      }
      continue;
    }
    payload_.resize(payload_bytes);
    const std::size_t payload_got = ReadUpTo(payload_.data(), payload_bytes);
    if (payload_got < payload_bytes) {
      NoteCorruptBlock(frame_offset);
      if (record_count != 0) salvage_.records_lost += record_count;
      salvage_.bytes_skipped += sizeof frame + payload_got;
      salvage_.trailer_missing = true;
      FinishRead();
      return {};
    }
    if (Crc32(payload_.data(), payload_bytes) != stored_crc) {
      // The frame told us the block's extent, so we can skip it exactly
      // and keep reading from the next frame boundary.
      NoteCorruptBlock(frame_offset);
      if (record_count != 0) salvage_.records_lost += record_count;
      salvage_.bytes_skipped += sizeof frame + payload_bytes;
      continue;
    }

    if (record_count == 0) {
      if (payload_bytes != kTrailerPayloadBytes) {
        NoteCorruptBlock(frame_offset);
        salvage_.bytes_skipped += sizeof frame + payload_bytes;
        continue;
      }
      // A CRC-valid trailer: reconcile the per-block loss estimates with
      // its authoritative totals (exact accounting even when resyncs could
      // not attribute skipped bytes to records).
      const std::uint64_t declared_records = LoadU64(payload_.data());
      const std::uint64_t declared_blocks = LoadU64(payload_.data() + 8);
      salvage_.trailer_seen = true;
      salvage_.trailer_records = declared_records;
      salvage_.trailer_blocks = declared_blocks;
      if (declared_records >= records_) {
        salvage_.records_lost = declared_records - records_;
      } else {
        salvage_.trailer_mismatch = true;
      }
      if (declared_blocks >= blocks_) {
        salvage_.corrupt_blocks = declared_blocks - blocks_;
      } else {
        salvage_.trailer_mismatch = true;
      }
      // Trailing bytes after the trailer are damage too — count them.
      std::uint8_t sink[256];
      for (std::size_t got = ReadUpTo(sink, sizeof sink); got > 0;
           got = ReadUpTo(sink, sizeof sink)) {
        salvage_.bytes_skipped += got;
        if (got < sizeof sink) break;
      }
      FinishRead();
      return {};
    }

    try {
      DecodeBlock(record_count, payload_);
    } catch (const TraceError&) {
      // CRC-valid but undecodable (writer bug or crafted file): treat as a
      // corrupt block rather than poisoning the whole salvage.
      NoteCorruptBlock(frame_offset);
      salvage_.records_lost += record_count;
      salvage_.bytes_skipped += sizeof frame + payload_bytes;
      continue;
    }
    ++blocks_;
    records_ += record_count;
    payload_bytes_ += payload_bytes;
    return events_;
  }
}

void TraceReader::VerifyTrailer(std::span<const std::uint8_t> payload) {
  if (payload.size() != kTrailerPayloadBytes) {
    Fail("trailer payload is " + std::to_string(payload.size()) +
         " bytes, expected " + std::to_string(kTrailerPayloadBytes));
  }
  const std::uint64_t declared_records = LoadU64(payload.data());
  const std::uint64_t declared_blocks = LoadU64(payload.data() + 8);
  if (declared_records != records_) {
    Fail("trailer declares " + std::to_string(declared_records) +
         " records but the stream held " + std::to_string(records_));
  }
  if (declared_blocks != blocks_) {
    Fail("trailer declares " + std::to_string(declared_blocks) +
         " blocks but the stream held " + std::to_string(blocks_));
  }
  // Nothing may follow the trailer.
  std::uint8_t extra;
  if (std::fread(&extra, 1, 1, file_) == 1) {
    Fail("trailing bytes after the trailer");
  }
}

void TraceReader::DecodeBlock(std::uint32_t record_count,
                              std::span<const std::uint8_t> payload) {
  const std::string defect =
      detail::DecodeRecords(record_count, payload, events_);
  if (!defect.empty()) {
    Fail("block " + std::to_string(blocks_) + " " + defect);
  }
}

TraceInfo ScanTrace(const std::string& path) {
  return ScanTrace(path, TraceReaderOptions{});
}

TraceInfo ScanTrace(const std::string& path,
                    const TraceReaderOptions& options) {
  TraceReader reader{path, options};
  TraceInfo info;
  info.header = reader.header();
  bool first = true;
  while (true) {
    const auto batch = reader.NextBatch();
    if (batch.empty()) break;
    if (first) {
      info.first_time = batch.front().time;
      first = false;
    }
    info.last_time = batch.back().time;
  }
  info.blocks = reader.blocks_read();
  info.records = reader.records_read();
  info.payload_bytes = reader.payload_bytes_read();
  info.file_bytes = reader.bytes_read();
  info.salvage = reader.salvage_stats();
  return info;
}

TraceInfo ValidateTraceFile(const std::string& path) {
  TraceInfo info = ScanTrace(path);
  if (info.records == 0) {
    throw TraceError(
        "trace " + path +
        ": structurally valid but carries zero probe records — an empty "
        "capture (header and trailer only) usually means the producing run "
        "was misconfigured, so it does not validate");
  }
  return info;
}

}  // namespace hotspots::trace
