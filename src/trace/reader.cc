#include "trace/reader.h"

#include <cstring>

#include "obs/metrics.h"
#include "trace/crc32.h"
#include "trace/varint.h"

namespace hotspots::trace {

namespace {

inline std::uint32_t LoadU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

inline std::uint64_t LoadU64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(LoadU32(in)) |
         static_cast<std::uint64_t>(LoadU32(in + 4)) << 32;
}

inline double BitsToDouble(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace

TraceReader::TraceReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    throw TraceError("trace: cannot open " + path_);
  }
  std::uint8_t header[kHeaderBytes];
  ReadExact(header, sizeof header, "file header");
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    Fail("bad magic — not a hotspots.trace file");
  }
  header_.version = LoadU32(header + 8);
  if (header_.version != kFormatVersion) {
    Fail("unsupported format version " + std::to_string(header_.version) +
         " (this reader understands version " +
         std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t header_bytes = LoadU32(header + 12);
  if (header_bytes != kHeaderBytes) {
    Fail("declared header size " + std::to_string(header_bytes) +
         " != " + std::to_string(kHeaderBytes));
  }
  header_.scenario_fingerprint = LoadU64(header + 16);
  header_.seed = LoadU64(header + 24);
  header_.flags = LoadU64(header + 32);
  header_.sample_rate = BitsToDouble(LoadU64(header + 40));
  if (!(header_.sample_rate > 0.0) || header_.sample_rate > 1.0) {
    Fail("sample rate outside (0,1]");
  }
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceReader::Fail(const std::string& what) const {
  throw TraceError("trace: " + path_ + " @" + std::to_string(offset_) + ": " +
                   what);
}

void TraceReader::ReadExact(void* out, std::size_t size, const char* what) {
  if (file_ == nullptr) Fail("read after end");
  const std::size_t got = std::fread(out, 1, size, file_);
  if (got != size) {
    Fail("truncated " + std::string(what) + " (needed " +
         std::to_string(size) + " bytes, got " + std::to_string(got) + ")");
  }
  offset_ += size;
}

std::span<const sim::ProbeEvent> TraceReader::NextBatch() {
  if (at_end_) return {};
  std::uint8_t frame[kBlockFrameBytes];
  ReadExact(frame, sizeof frame, "block frame");
  const std::uint32_t record_count = LoadU32(frame);
  const std::uint32_t payload_bytes = LoadU32(frame + 4);
  const std::uint32_t stored_crc = LoadU32(frame + 8);

  if (record_count > kMaxBlockRecords) {
    Fail("block record count " + std::to_string(record_count) +
         " exceeds the format ceiling " + std::to_string(kMaxBlockRecords));
  }
  if (payload_bytes > kMaxBlockPayloadBytes) {
    Fail("block payload size " + std::to_string(payload_bytes) +
         " exceeds the format ceiling");
  }
  if (record_count != 0 &&
      payload_bytes > static_cast<std::uint64_t>(record_count) *
                          kMaxRecordBytes) {
    Fail("block payload size " + std::to_string(payload_bytes) +
         " impossible for " + std::to_string(record_count) + " records");
  }
  payload_.resize(payload_bytes);
  ReadExact(payload_.data(), payload_bytes,
            record_count == 0 ? "trailer payload" : "block payload");
  const std::uint32_t computed_crc = Crc32(payload_.data(), payload_bytes);
  if (computed_crc != stored_crc) {
    Fail((record_count == 0 ? std::string("trailer") : std::string("block ")) +
         (record_count == 0 ? "" : std::to_string(blocks_)) +
         " CRC mismatch (stored " + std::to_string(stored_crc) +
         ", computed " + std::to_string(computed_crc) + ")");
  }

  if (record_count == 0) {
    VerifyTrailer(payload_);
    at_end_ = true;
    auto& registry = obs::Registry::Global();
    registry.GetCounter("trace.reader.files").Increment();
    registry.GetCounter("trace.reader.records").Add(records_);
    registry.GetCounter("trace.reader.blocks").Add(blocks_);
    return {};
  }

  DecodeBlock(record_count, payload_);
  ++blocks_;
  records_ += record_count;
  payload_bytes_ += payload_bytes;
  return events_;
}

void TraceReader::VerifyTrailer(std::span<const std::uint8_t> payload) {
  if (payload.size() != kTrailerPayloadBytes) {
    Fail("trailer payload is " + std::to_string(payload.size()) +
         " bytes, expected " + std::to_string(kTrailerPayloadBytes));
  }
  const std::uint64_t declared_records = LoadU64(payload.data());
  const std::uint64_t declared_blocks = LoadU64(payload.data() + 8);
  if (declared_records != records_) {
    Fail("trailer declares " + std::to_string(declared_records) +
         " records but the stream held " + std::to_string(records_));
  }
  if (declared_blocks != blocks_) {
    Fail("trailer declares " + std::to_string(declared_blocks) +
         " blocks but the stream held " + std::to_string(blocks_));
  }
  // Nothing may follow the trailer.
  std::uint8_t extra;
  if (std::fread(&extra, 1, 1, file_) == 1) {
    Fail("trailing bytes after the trailer");
  }
}

void TraceReader::DecodeBlock(std::uint32_t record_count,
                              std::span<const std::uint8_t> payload) {
  events_.resize(record_count);
  const std::uint8_t* cursor = payload.data();
  const std::uint8_t* const end = cursor + payload.size();
  std::uint64_t prev_time_bits = 0;
  std::uint32_t prev_src_host = 0;
  std::uint32_t prev_src_address = 0;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    std::uint64_t time_delta = 0;
    std::uint64_t host_delta = 0;
    std::uint64_t addr_delta = 0;
    std::uint64_t dst_delivery = 0;
    if (!DecodeVarint(&cursor, end, &time_delta) ||
        !DecodeVarint(&cursor, end, &host_delta) ||
        !DecodeVarint(&cursor, end, &addr_delta) ||
        !DecodeVarint(&cursor, end, &dst_delivery)) {
      Fail("block " + std::to_string(blocks_) + " record " +
           std::to_string(i) + ": malformed varint");
    }
    const std::uint64_t time_bits = prev_time_bits ^ time_delta;
    prev_time_bits = time_bits;
    const std::int64_t src_host =
        static_cast<std::int64_t>(prev_src_host) + ZigZagDecode(host_delta);
    if (src_host < 0 || src_host > static_cast<std::int64_t>(~std::uint32_t{0})) {
      Fail("block " + std::to_string(blocks_) + " record " +
           std::to_string(i) + ": source host id out of range");
    }
    prev_src_host = static_cast<std::uint32_t>(src_host);
    if (addr_delta > ~std::uint32_t{0}) {
      Fail("block " + std::to_string(blocks_) + " record " +
           std::to_string(i) + ": source address out of range");
    }
    prev_src_address ^= static_cast<std::uint32_t>(addr_delta);
    const std::uint64_t delivery = dst_delivery & 0x7u;
    const std::uint64_t dst = dst_delivery >> 3;
    if (dst > ~std::uint32_t{0} ||
        delivery > static_cast<std::uint64_t>(
                       topology::Delivery::kNetworkLoss)) {
      Fail("block " + std::to_string(blocks_) + " record " +
           std::to_string(i) + ": destination/delivery out of range");
    }
    sim::ProbeEvent& event = events_[i];
    event.time = BitsToDouble(time_bits);
    event.src_host = prev_src_host;
    event.src_address = net::Ipv4{prev_src_address};
    event.dst = net::Ipv4{static_cast<std::uint32_t>(dst)};
    event.delivery = static_cast<topology::Delivery>(delivery);
  }
  if (cursor != end) {
    Fail("block " + std::to_string(blocks_) + ": " +
         std::to_string(end - cursor) + " unconsumed payload bytes");
  }
}

TraceInfo ScanTrace(const std::string& path) {
  TraceReader reader{path};
  TraceInfo info;
  info.header = reader.header();
  bool first = true;
  while (true) {
    const auto batch = reader.NextBatch();
    if (batch.empty()) break;
    if (first) {
      info.first_time = batch.front().time;
      first = false;
    }
    info.last_time = batch.back().time;
  }
  info.blocks = reader.blocks_read();
  info.records = reader.records_read();
  info.payload_bytes = reader.payload_bytes_read();
  info.file_bytes = reader.bytes_read();
  return info;
}

}  // namespace hotspots::trace
