// LEB128 variable-length integers + ZigZag, the scalar encoding of
// `hotspots.trace.v1` records.
//
// Encoders are raw-pointer appends into a caller-reserved buffer (the
// writer bounds every record by kMaxVarintBytes × fields, so the hot path
// carries no per-byte capacity checks); decoders are bounds-checked
// against the block end and fail closed on overlong/truncated input.
#pragma once

#include <cstdint>

namespace hotspots::trace {

/// Maximum encoded size of one 64-bit varint.
inline constexpr int kMaxVarintBytes = 10;

/// Appends `value` at `out` (little-endian base-128, 7 bits per byte, high
/// bit = continuation).  Returns one past the last byte written.  The
/// caller must have kMaxVarintBytes available.
inline std::uint8_t* EncodeVarint(std::uint8_t* out, std::uint64_t value) {
  while (value >= 0x80u) {
    *out++ = static_cast<std::uint8_t>(value) | 0x80u;
    value >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(value);
  return out;
}

/// Decodes a varint from [*cursor, end).  On success advances *cursor past
/// the encoding and returns true; on truncated or overlong (> 10 bytes)
/// input returns false with *cursor unspecified.
inline bool DecodeVarint(const std::uint8_t** cursor, const std::uint8_t* end,
                         std::uint64_t* value) {
  const std::uint8_t* p = *cursor;
  std::uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p == end) return false;
    const std::uint8_t byte = *p++;
    result |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      // Reject non-canonical bits beyond 64 in the final (10th) byte.
      if (shift == 63 && byte > 1u) return false;
      *cursor = p;
      *value = result;
      return true;
    }
  }
  return false;  // Continuation bit set on the 10th byte: overlong.
}

/// ZigZag: maps signed deltas to small unsigned varints (0, -1, 1, -2 → 0,
/// 1, 2, 3).
[[nodiscard]] inline constexpr std::uint64_t ZigZagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] inline constexpr std::int64_t ZigZagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1u);
}

}  // namespace hotspots::trace
