// Incremental `hotspots.trace.v1` decoding over arbitrary byte chunks.
//
// TraceReader (reader.h) owns a FILE* and pulls bytes itself; a network
// ingest path is push-driven — a socket hands over whatever bytes
// happened to arrive, cut anywhere: mid-header, mid-frame, mid-varint.
// StreamDecoder is the state machine that makes those two worlds meet:
// Feed() appends raw bytes, NextBatch() yields each block's records the
// moment the block is complete and CRC-verified, and nothing is ever
// delivered from an unverified span.  Feeding a whole trace file in one
// chunk or one byte at a time yields byte-identical record sequences —
// pinned by tests/trace_stream_decoder_test.cc, which splits fixture
// traces at every byte boundary across block seams.  This is the
// correctness backbone of the telescope server's per-connection partial
// reads (src/serve/connection.h).
//
// The decoder is strict/fail-closed only (no salvage): a network peer
// that ships a damaged block is a protocol violation to disconnect, not
// a tape to splice.  Every TraceError names the stream, the failing
// block index, and the byte offset within the logical stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/observer.h"
#include "trace/format.h"

namespace hotspots::trace {

class StreamDecoder {
 public:
  /// `stream_name` labels diagnostics (a path, or "conn 7 from 10.0.0.2").
  explicit StreamDecoder(std::string stream_name = "stream");

  StreamDecoder(const StreamDecoder&) = delete;
  StreamDecoder& operator=(const StreamDecoder&) = delete;

  /// Appends bytes to the decode buffer.  Cheap (one memcpy); decoding
  /// happens in NextBatch().  Throws TraceError if bytes arrive after the
  /// trailer completed the stream.
  void Feed(std::span<const std::uint8_t> bytes);

  /// Decodes the next complete block, or returns an empty span when the
  /// buffered bytes don't yet hold one (call Feed() and retry) or the
  /// stream is finished (check finished()).  The span aliases an internal
  /// buffer overwritten by the next call.  Throws TraceError on any
  /// corruption — bad magic, ceilings exceeded, CRC mismatch, varint
  /// garbage, trailer totals off.
  [[nodiscard]] std::span<const sim::ProbeEvent> NextBatch();

  /// Declares end of input (peer closed the connection / EOF).  Throws
  /// TraceError unless the stream ended exactly at a verified trailer
  /// with no bytes left over.
  void FinishEof();

  /// True once the file header has been decoded.
  [[nodiscard]] bool header_seen() const { return state_ != State::kHeader; }
  /// Valid once header_seen().
  [[nodiscard]] const TraceHeader& header() const { return header_; }
  /// True once the trailer has been verified; NextBatch() stays empty.
  [[nodiscard]] bool finished() const { return state_ == State::kDone; }

  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  [[nodiscard]] std::uint64_t blocks_read() const { return blocks_; }
  /// Logical stream offset of the next undecoded byte.
  [[nodiscard]] std::uint64_t bytes_consumed() const { return consumed_; }
  /// Bytes fed but not yet decoded (the partial structure in flight).
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() - pos_;
  }

 private:
  enum class State { kHeader, kBody, kDone };

  [[noreturn]] void Fail(const std::string& what) const;
  /// Bytes available beyond pos_.
  [[nodiscard]] std::size_t Available() const { return buffer_.size() - pos_; }
  void Consume(std::size_t bytes);
  void DecodeHeader();
  void VerifyTrailer(std::span<const std::uint8_t> payload);

  std::string stream_name_;
  State state_ = State::kHeader;
  TraceHeader header_;

  std::vector<std::uint8_t> buffer_;  ///< Fed, not yet decoded bytes.
  std::size_t pos_ = 0;               ///< Decode cursor into buffer_.
  std::uint64_t consumed_ = 0;        ///< Logical stream offset at pos_.

  std::vector<sim::ProbeEvent> events_;  ///< Reused decoded batch.
  std::uint64_t records_ = 0;
  std::uint64_t blocks_ = 0;
};

}  // namespace hotspots::trace
