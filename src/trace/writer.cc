#include "trace/writer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "trace/crc32.h"
#include "trace/varint.h"

namespace hotspots::trace {

namespace {

/// Interned span names for the writer pipeline's timeline lanes.
struct WriterSpanIds {
  std::uint32_t queue_wait = obs::InternSpanName("trace.queue_wait");
  std::uint32_t encode = obs::InternSpanName("trace.encode");
};

const WriterSpanIds& SpanIds() {
  static const WriterSpanIds ids;
  return ids;
}

inline void StoreU32(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
  out[2] = static_cast<std::uint8_t>(value >> 16);
  out[3] = static_cast<std::uint8_t>(value >> 24);
}

inline void StoreU64(std::uint8_t* out, std::uint64_t value) {
  StoreU32(out, static_cast<std::uint32_t>(value));
  StoreU32(out + 4, static_cast<std::uint32_t>(value >> 32));
}

inline std::uint64_t DoubleBits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

/// Bound on buffers queued ahead of the encoder (back-pressure point).
constexpr std::size_t kMaxQueuedBuffers = 8;

}  // namespace

TraceWriter::TraceWriter(const std::string& path, TraceWriterOptions options)
    : path_(path), options_(options), sampler_(options.sample_seed) {
  if (!(options_.sample_rate > 0.0) || options_.sample_rate > 1.0) {
    throw TraceError("TraceWriter: sample_rate must be in (0,1]; got " +
                     std::to_string(options_.sample_rate));
  }
  if (options_.block_records == 0 ||
      options_.block_records > kMaxBlockRecords) {
    throw TraceError("TraceWriter: block_records out of range");
  }
  sampling_ = options_.sample_rate < 1.0;
  if (sampling_) {
    // Geometric gap-sampling: instead of a Bernoulli coin per record, draw
    // how many records to skip until the next kept one.  The distribution
    // of kept records is identical (geometric gaps ⇔ independent
    // Bernoulli(rate) coins), but the per-record cost on the skip path
    // collapses to a decrement — which is what lets a sampled writer ride
    // along at full engine rate.
    inv_log1m_rate_ = 1.0 / std::log1p(-options_.sample_rate);
    skip_ = NextGap();
  }
  payload_.resize(static_cast<std::size_t>(options_.block_records) *
                  kMaxRecordBytes);

  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw TraceError("TraceWriter: cannot open " + path_ + " for writing");
  }

  std::uint8_t header[kHeaderBytes];
  std::memcpy(header, kMagic, sizeof kMagic);
  StoreU32(header + 8, kFormatVersion);
  StoreU32(header + 12, kHeaderBytes);
  StoreU64(header + 16, options_.scenario_fingerprint);
  StoreU64(header + 24, options_.seed);
  StoreU64(header + 32, sampling_ ? kFlagSampled : 0ull);
  StoreU64(header + 40, DoubleBits(options_.sample_rate));
  WriteOrThrow(header, sizeof header);

  pipelined_ =
      options_.pipeline == PipelineMode::kOn ||
      (options_.pipeline == PipelineMode::kAuto &&
       std::thread::hardware_concurrency() > 1);
  if (pipelined_) {
    staging_capacity_ = options_.block_records;
    staging_.reserve(staging_capacity_);
    worker_ = std::thread{&TraceWriter::WorkerLoop, this};
  }
}

TraceWriter::~TraceWriter() {
  if (finished_) {
    JoinWorker();  // Finish() may have thrown between join and return.
    return;
  }
  try {
    Finish();
  } catch (const TraceError& error) {
    std::fprintf(stderr, "TraceWriter: %s\n", error.what());
  }
  JoinWorker();
}

void TraceWriter::OnAttach() {
  if (finished_) {
    throw TraceError("TraceWriter: attached after Finish() — " + path_);
  }
}

std::uint64_t TraceWriter::NextGap() {
  // Top 53 sampler bits → uniform u ∈ [0,1); Geometric(rate) via inversion:
  // ⌊log(1-u) / log(1-rate)⌋ records skipped before the next kept one.
  const double u =
      static_cast<double>(sampler_.Next() >> 11) * 0x1.0p-53;
  const double gap = std::log1p(-u) * inv_log1m_rate_;
  return gap >= 1e18 ? static_cast<std::uint64_t>(1e18)
                     : static_cast<std::uint64_t>(gap);
}

void TraceWriter::Encode(const sim::ProbeEvent& event) {
  if (sampling_) {
    if (skip_ > 0) {
      --skip_;
      ++sampled_out_;
      return;
    }
    skip_ = NextGap();
  }
  EncodeRecord(event);
}

void TraceWriter::EncodeRecord(const sim::ProbeEvent& event) {
  std::uint8_t* p = payload_.data() + payload_used_;
  const std::uint64_t time_bits = DoubleBits(event.time);
  p = EncodeVarint(p, time_bits ^ prev_time_bits_);
  prev_time_bits_ = time_bits;
  p = EncodeVarint(p, ZigZagEncode(static_cast<std::int64_t>(event.src_host) -
                                   static_cast<std::int64_t>(prev_src_host_)));
  prev_src_host_ = event.src_host;
  const std::uint32_t src_address = event.src_address.value();
  p = EncodeVarint(p, src_address ^ prev_src_address_);
  prev_src_address_ = src_address;
  p = EncodeVarint(
      p, (static_cast<std::uint64_t>(event.dst.value()) << 3) |
             static_cast<std::uint64_t>(event.delivery));
  payload_used_ = static_cast<std::size_t>(p - payload_.data());
  last_time_ = event.time;
  ++records_;
  if (++block_record_count_ == options_.block_records) FlushBlock();
}

void TraceWriter::FlushBlock() {
  if (block_record_count_ == 0) return;
  std::uint8_t frame[kBlockFrameBytes];
  StoreU32(frame, block_record_count_);
  StoreU32(frame + 4, static_cast<std::uint32_t>(payload_used_));
  StoreU32(frame + 8, Crc32(payload_.data(), payload_used_));
  WriteOrThrow(frame, sizeof frame);
  WriteOrThrow(payload_.data(), payload_used_);
  ++blocks_;
  payload_used_ = 0;
  block_record_count_ = 0;
  prev_time_bits_ = 0;
  prev_src_host_ = 0;
  prev_src_address_ = 0;
}

void TraceWriter::EnqueueStaging() {
  {
    // Queue-wait span: simulation-thread time lost to writer back-pressure
    // (a full queue parks the producer here until the encoder catches up).
    obs::TraceSpan queue_wait_span{SpanIds().queue_wait,
                                   obs::TracingEnabled()};
    std::unique_lock<std::mutex> lock{mutex_};
    space_ready_.wait(lock, [this] {
      return queue_.size() < kMaxQueuedBuffers || worker_error_ != nullptr;
    });
    if (worker_error_ != nullptr) {
      // Surface the worker's failure on the simulation thread; the run
      // aborts just as a synchronous write failure would abort it.
      std::rethrow_exception(worker_error_);
    }
    queue_.push_back(std::move(staging_));
    if (!free_.empty()) {
      staging_ = std::move(free_.back());
      free_.pop_back();
    } else {
      staging_ = {};
      staging_.reserve(staging_capacity_);
    }
  }
  work_ready_.notify_one();
  staging_.clear();
}

void TraceWriter::WorkerLoop() {
  const bool tracing = obs::TracingEnabled();
  if (tracing) obs::SpanCollector::Global().SetThreadLane("trace-writer");
  bool failed = false;
  for (;;) {
    std::vector<sim::ProbeEvent> buffer;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_ready_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) return;
      buffer = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();
    if (!failed) {
      try {
        obs::TraceSpan encode_span{SpanIds().encode, tracing};
        for (const sim::ProbeEvent& event : buffer) Encode(event);
      } catch (...) {
        failed = true;  // Keep draining so the producer never deadlocks.
        std::lock_guard<std::mutex> lock{mutex_};
        worker_error_ = std::current_exception();
      }
    }
    buffer.clear();
    std::lock_guard<std::mutex> lock{mutex_};
    if (free_.size() < kMaxQueuedBuffers) free_.push_back(std::move(buffer));
  }
}

void TraceWriter::JoinWorker() {
  if (!worker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  work_ready_.notify_one();
  worker_.join();
}

void TraceWriter::Finish() {
  if (finished_) return;
  if (pipelined_) {
    // Hand over the partial staging buffer (unless the worker already
    // failed — then there is nothing useful left to encode), drain, and
    // stop the worker before touching the stream from this thread again.
    {
      std::unique_lock<std::mutex> lock{mutex_};
      space_ready_.wait(lock, [this] {
        return queue_.size() < kMaxQueuedBuffers || worker_error_ != nullptr;
      });
      if (!staging_.empty() && worker_error_ == nullptr) {
        queue_.push_back(std::move(staging_));
      }
      stop_ = true;
    }
    work_ready_.notify_one();
    worker_.join();
    if (worker_error_ != nullptr) {
      finished_ = true;
      std::rethrow_exception(worker_error_);
    }
  }
  FlushBlock();
  std::uint8_t trailer[kBlockFrameBytes + kTrailerPayloadBytes];
  std::uint8_t* payload = trailer + kBlockFrameBytes;
  StoreU64(payload, records_);
  StoreU64(payload + 8, blocks_);
  StoreU64(payload + 16, DoubleBits(last_time_));
  StoreU32(trailer, 0);  // Record count 0 marks the trailer.
  StoreU32(trailer + 4, kTrailerPayloadBytes);
  StoreU32(trailer + 8, Crc32(payload, kTrailerPayloadBytes));
  WriteOrThrow(trailer, sizeof trailer);
  const bool close_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  finished_ = true;
  auto& registry = obs::Registry::Global();
  registry.GetCounter("trace.writer.files").Increment();
  registry.GetCounter("trace.writer.records").Add(records_);
  registry.GetCounter("trace.writer.blocks").Add(blocks_);
  registry.GetCounter("trace.writer.bytes").Add(bytes_);
  if (sampled_out_ > 0) {
    registry.GetCounter("trace.writer.sampled_out").Add(sampled_out_);
  }
  if (!close_ok) {
    throw TraceError("TraceWriter: close failed for " + path_);
  }
}

void TraceWriter::WriteOrThrow(const void* data, std::size_t size) {
  if (file_ == nullptr) {
    throw TraceError("TraceWriter: write after close — " + path_);
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    std::fclose(file_);
    file_ = nullptr;
    throw TraceError("TraceWriter: short write to " + path_);
  }
  bytes_ += size;
}

}  // namespace hotspots::trace
