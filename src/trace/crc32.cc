#include "trace/crc32.h"

#include <array>

namespace hotspots::trace {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

/// Eight derived tables for slicing-by-8: table[0] is the classic CRC-32
/// table; table[k][b] extends a byte's contribution k positions further
/// into the stream.  Built once at static-init time (constexpr, so
/// actually at compile time).
struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPolynomial : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  // Slicing-by-8 main loop: consume 8 bytes per iteration.
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(bytes[0]) |
                                    static_cast<std::uint32_t>(bytes[1]) << 8 |
                                    static_cast<std::uint32_t>(bytes[2]) << 16 |
                                    static_cast<std::uint32_t>(bytes[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(bytes[4]) |
                             static_cast<std::uint32_t>(bytes[5]) << 8 |
                             static_cast<std::uint32_t>(bytes[6]) << 16 |
                             static_cast<std::uint32_t>(bytes[7]) << 24;
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
          kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = kTables.t[0][(crc ^ *bytes++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace hotspots::trace
