#include "trace/stream_decoder.h"

#include <cstring>

#include "trace/crc32.h"
#include "trace/record_codec.h"

namespace hotspots::trace {

using detail::BitsToDouble;
using detail::LoadU32;
using detail::LoadU64;

StreamDecoder::StreamDecoder(std::string stream_name)
    : stream_name_(std::move(stream_name)) {}

void StreamDecoder::Fail(const std::string& what) const {
  throw TraceError("trace: " + stream_name_ + " @" +
                   std::to_string(consumed_) + ": " + what);
}

void StreamDecoder::Feed(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  if (state_ == State::kDone) {
    Fail("trailing bytes after the trailer");
  }
  // Compact before growing: once the cursor has passed more bytes than
  // remain, slide the live tail to the front so the buffer stays bounded
  // by one in-flight structure, not the whole stream.
  if (pos_ > 0 && pos_ >= buffer_.size() - pos_) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void StreamDecoder::Consume(std::size_t bytes) {
  pos_ += bytes;
  consumed_ += bytes;
}

void StreamDecoder::DecodeHeader() {
  const std::uint8_t* header = buffer_.data() + pos_;
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    Fail("bad magic — not a hotspots.trace stream");
  }
  header_.version = LoadU32(header + 8);
  if (header_.version != kFormatVersion) {
    Fail("unsupported format version " + std::to_string(header_.version) +
         " (this decoder understands version " +
         std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t header_bytes = LoadU32(header + 12);
  if (header_bytes != kHeaderBytes) {
    Fail("declared header size " + std::to_string(header_bytes) +
         " != " + std::to_string(kHeaderBytes));
  }
  header_.scenario_fingerprint = LoadU64(header + 16);
  header_.seed = LoadU64(header + 24);
  header_.flags = LoadU64(header + 32);
  header_.sample_rate = BitsToDouble(LoadU64(header + 40));
  if (!(header_.sample_rate > 0.0) || header_.sample_rate > 1.0) {
    Fail("sample rate outside (0,1]");
  }
  Consume(kHeaderBytes);
  state_ = State::kBody;
}

std::span<const sim::ProbeEvent> StreamDecoder::NextBatch() {
  if (state_ == State::kHeader) {
    if (Available() < kHeaderBytes) return {};
    DecodeHeader();
  }
  if (state_ == State::kDone) return {};

  if (Available() < kBlockFrameBytes) return {};
  const std::uint8_t* frame = buffer_.data() + pos_;
  const std::uint32_t record_count = LoadU32(frame);
  const std::uint32_t payload_bytes = LoadU32(frame + 4);
  const std::uint32_t stored_crc = LoadU32(frame + 8);

  if (record_count > kMaxBlockRecords) {
    Fail("block " + std::to_string(blocks_) + ": record count " +
         std::to_string(record_count) + " exceeds the format ceiling " +
         std::to_string(kMaxBlockRecords));
  }
  if (payload_bytes > kMaxBlockPayloadBytes) {
    Fail("block " + std::to_string(blocks_) + ": payload size " +
         std::to_string(payload_bytes) + " exceeds the format ceiling");
  }
  if (record_count != 0 &&
      payload_bytes >
          static_cast<std::uint64_t>(record_count) * kMaxRecordBytes) {
    Fail("block " + std::to_string(blocks_) + ": payload size " +
         std::to_string(payload_bytes) + " impossible for " +
         std::to_string(record_count) + " records");
  }
  if (Available() < kBlockFrameBytes + payload_bytes) return {};

  const std::span<const std::uint8_t> payload{
      buffer_.data() + pos_ + kBlockFrameBytes, payload_bytes};
  const std::uint32_t computed_crc = Crc32(payload.data(), payload.size());
  if (computed_crc != stored_crc) {
    Fail((record_count == 0 ? std::string("trailer")
                            : "block " + std::to_string(blocks_)) +
         " CRC mismatch (stored " + std::to_string(stored_crc) +
         ", computed " + std::to_string(computed_crc) + ")");
  }

  if (record_count == 0) {
    VerifyTrailer(payload);
    Consume(kBlockFrameBytes + payload_bytes);
    state_ = State::kDone;
    if (Available() > 0) Fail("trailing bytes after the trailer");
    return {};
  }

  const std::string defect =
      detail::DecodeRecords(record_count, payload, events_);
  if (!defect.empty()) {
    Fail("block " + std::to_string(blocks_) + ": " + defect);
  }
  Consume(kBlockFrameBytes + payload_bytes);
  ++blocks_;
  records_ += record_count;
  return events_;
}

void StreamDecoder::VerifyTrailer(std::span<const std::uint8_t> payload) {
  if (payload.size() != kTrailerPayloadBytes) {
    Fail("trailer payload is " + std::to_string(payload.size()) +
         " bytes, expected " + std::to_string(kTrailerPayloadBytes));
  }
  const std::uint64_t declared_records = LoadU64(payload.data());
  const std::uint64_t declared_blocks = LoadU64(payload.data() + 8);
  if (declared_records != records_) {
    Fail("trailer declares " + std::to_string(declared_records) +
         " records but the stream held " + std::to_string(records_));
  }
  if (declared_blocks != blocks_) {
    Fail("trailer declares " + std::to_string(declared_blocks) +
         " blocks but the stream held " + std::to_string(blocks_));
  }
}

void StreamDecoder::FinishEof() {
  if (state_ == State::kDone) return;
  if (state_ == State::kHeader) {
    Fail("stream ended inside the file header (got " +
         std::to_string(Available()) + " of " + std::to_string(kHeaderBytes) +
         " bytes)");
  }
  if (Available() == 0) {
    Fail("stream ended before the trailer (after block " +
         std::to_string(blocks_) + ")");
  }
  Fail("stream ended mid-block (block " + std::to_string(blocks_) + ", " +
       std::to_string(Available()) + " bytes of an unfinished structure)");
}

}  // namespace hotspots::trace
