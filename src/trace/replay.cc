#include "trace/replay.h"

#include "obs/metrics.h"

namespace hotspots::trace {

ReplaySummary Replay(TraceReader& reader, sim::ProbeObserver& observer) {
  observer.OnAttach();
  ReplaySummary summary;
  bool first = true;
  while (true) {
    const auto batch = reader.NextBatch();
    if (batch.empty()) break;
    if (first) {
      summary.first_time = batch.front().time;
      first = false;
    }
    summary.last_time = batch.back().time;
    for (const sim::ProbeEvent& event : batch) {
      ++summary.delivery_counts[static_cast<std::size_t>(event.delivery)];
    }
    observer.OnProbeBatch(batch);
    ++summary.blocks;
    summary.records += batch.size();
  }
  auto& registry = obs::Registry::Global();
  registry.GetCounter("trace.replay.runs").Increment();
  registry.GetCounter("trace.replay.records").Add(summary.records);
  return summary;
}

ReplaySummary ReplayFile(const std::string& path,
                         sim::ProbeObserver& observer) {
  TraceReader reader{path};
  return Replay(reader, observer);
}

}  // namespace hotspots::trace
