// `hotspots.trace.v1` — the binary probe-trace format.
//
// The paper's measurement half was built on *recorded* darknet traces that
// were re-analyzed offline many times; this format gives the reproduction
// the same decoupling.  A trace is the engine's full probe stream — every
// ProbeEvent, including drops, in emission order — captured once and
// replayable through any sim::ProbeObserver (telescope, TRW gateway,
// analysis histograms) with bit-identical results.
//
// Wire layout (all integers little-endian):
//
//   header (48 bytes)
//     [ 0..8)   magic  "HSPTRACE"
//     [ 8..12)  u32    format version (1)
//     [12..16)  u32    header size in bytes (48; later versions may grow)
//     [16..24)  u64    scenario fingerprint (caller-defined; ties the
//                      trace to the config that produced it)
//     [24..32)  u64    engine seed
//     [32..40)  u64    flags (bit 0: stream was down-sampled)
//     [40..48)  u64    IEEE-754 bits of the sampling rate (1.0 = full)
//
//   zero or more blocks
//     [0..4)    u32    record count (> 0; 0 marks the trailer)
//     [4..8)    u32    payload size in bytes
//     [8..12)   u32    CRC-32 of the payload (crc32.h)
//     [12..)           payload: `record count` encoded records
//
//   trailer (a block frame with record count 0)
//     payload (24 bytes): u64 total records, u64 total blocks,
//                         u64 IEEE-754 bits of the last event timestamp
//     (CRC-32 protects the trailer payload like any block's.)
//
// Record encoding — four varints (varint.h), delta-predicted against the
// previous record *of the same block* (predictors reset to zero at each
// block boundary, so blocks decode independently):
//
//   varint( time_bits XOR prev_time_bits )     // identical times → 1 byte
//   varint( zigzag(src_host − prev_src_host) ) // host walk → 1-2 bytes
//   varint( src_address XOR prev_src_address )
//   varint( (dst << 3) | delivery )            // 3-bit Delivery verdict
//
// A record is therefore at most 25 bytes and typically ~12: the engine
// emits whole steps at one timestamp with ascending host ids, which the
// XOR/zigzag predictors collapse to single bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace hotspots::trace {

/// Schema identifier used in sidecars and diagnostics.
inline constexpr const char* kTraceSchema = "hotspots.trace.v1";

inline constexpr char kMagic[8] = {'H', 'S', 'P', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kHeaderBytes = 48;
inline constexpr std::uint32_t kBlockFrameBytes = 12;
inline constexpr std::uint32_t kTrailerPayloadBytes = 24;

/// Header flag bits.
inline constexpr std::uint64_t kFlagSampled = 1ull << 0;

/// Worst-case encoded record size (4 varints: 10 + 5 + 5 + 5).
inline constexpr std::size_t kMaxRecordBytes = 25;

/// Default records per block.  Chosen to match the engine's event-staging
/// batch (1024) times four: blocks are big enough to amortize the frame +
/// CRC and small enough that `head`/corruption diagnostics stay local.
inline constexpr std::uint32_t kDefaultBlockRecords = 4096;

/// Hard ceiling a reader enforces on the declared payload size, so a
/// corrupt length field cannot drive an allocation of gigabytes.
inline constexpr std::uint32_t kMaxBlockRecords = 1u << 20;
inline constexpr std::uint32_t kMaxBlockPayloadBytes =
    kMaxBlockRecords * static_cast<std::uint32_t>(kMaxRecordBytes);

/// Any malformed input — bad magic, wrong version, truncation, CRC
/// mismatch, varint garbage — raises this, never UB.  The message names
/// the failing structure and file offset.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parsed file header.
struct TraceHeader {
  std::uint32_t version = kFormatVersion;
  std::uint64_t scenario_fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint64_t flags = 0;
  double sample_rate = 1.0;

  [[nodiscard]] bool sampled() const { return (flags & kFlagSampled) != 0; }
};

/// FNV-1a over 64-bit words: the repo's standard output fingerprint
/// (micro_hotpath and the determinism tests fold run results through
/// this).  Centralized here so capture, replay, and the gates all agree
/// on one mixing function.
struct Fingerprint {
  std::uint64_t hash = 0xcbf29ce484222325ull;

  void Mix(std::uint64_t word) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (word >> shift) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  }

  void MixDouble(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    Mix(bits);
  }

  void MixString(const std::string& text) {
    for (const char c : text) Mix(static_cast<unsigned char>(c));
  }
};

}  // namespace hotspots::trace
