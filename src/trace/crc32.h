// CRC-32 (the zlib/IEEE 802.3 polynomial, reflected 0xEDB88320).
//
// Every `hotspots.trace.v1` block carries a CRC-32 of its payload so the
// reader can reject bit flips and truncation instead of silently replaying
// garbage.  The checksum sits on the capture hot path (one update per
// flushed block, amortized to a few bytes per record), so the
// implementation is slicing-by-8: eight table lookups per 8 input bytes,
// ~0.5 cycles/byte on commodity hardware — an order of magnitude faster
// than the classic byte-at-a-time loop and still pure portable C++.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hotspots::trace {

/// CRC-32 of `size` bytes at `data`.  `seed` chains partial computations:
/// Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)).
[[nodiscard]] std::uint32_t Crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace hotspots::trace
