// Streaming `hotspots.trace.v1` capture.
//
// TraceWriter is a sim::ProbeObserver: attach it to Engine::Run — alone or
// composed with a telescope through sim::TeeObserver — and every probe the
// engine emits is delta-encoded and flushed to disk in framed,
// CRC-protected blocks (format.h).
//
// The engine's probe loop runs tens of millions of probes per second, so
// by default the writer is *pipelined*: the observer hot path only copies
// raw events into a staging buffer (a bounds-checked memcpy per batch),
// and a single worker thread does the varint encoding, CRC, and fwrite.
// One worker consuming buffers in FIFO order means the bytes on disk are
// identical to the synchronous writer's, block for block — set
// `pipelined = false` to get that single-threaded path (simpler stacks
// under a debugger, same file).  Back-pressure is a bounded queue: if the
// encoder falls behind, the simulation thread blocks rather than buffering
// without limit.
//
// The optional sampling knob keeps a Bernoulli subset of the stream,
// drawn from the writer's own SplitMix64 stream — the engine's RNG is
// never touched, so capture (sampled or not) cannot perturb a run.
//
// Observability: Finish() folds totals into obs::Registry::Global() under
// "trace.writer.*" (records, blocks, bytes, sampled_out) — cold path only.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "prng/splitmix.h"
#include "sim/observer.h"
#include "trace/format.h"

namespace hotspots::trace {

/// Whether encode + CRC + I/O run on a worker thread (see file comment).
enum class PipelineMode {
  kAuto,  ///< Pipeline iff the host has >1 hardware thread.
  kOff,   ///< Always synchronous.
  kOn,    ///< Always pipelined (tests force the worker path with this).
};

struct TraceWriterOptions {
  /// Caller-defined fingerprint of the scenario/config that produced the
  /// stream; replay tooling surfaces it so trace files stay attributable.
  std::uint64_t scenario_fingerprint = 0;
  /// The engine seed of the captured run.
  std::uint64_t seed = 0;
  /// Keep each record with this probability (1.0 = capture everything).
  double sample_rate = 1.0;
  /// Seed of the writer-private sampling stream.
  std::uint64_t sample_seed = 0x7ace5eed;
  /// Records per block; bounded by format.h's kMaxBlockRecords.
  std::uint32_t block_records = kDefaultBlockRecords;
  /// The file produced is byte-identical in every mode; kAuto avoids the
  /// pipeline on single-core hosts, where sharing the core with the
  /// simulation only adds context switches.
  PipelineMode pipeline = PipelineMode::kAuto;
};

class TraceWriter final : public sim::ProbeObserver {
 public:
  /// Opens `path` for writing and emits the header.  Throws TraceError on
  /// I/O failure or out-of-range options.
  TraceWriter(const std::string& path, TraceWriterOptions options);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Finishes the file if Finish() was not called; I/O errors at this
  /// point are reported to stderr (a destructor cannot throw).
  ~TraceWriter() override;

  void OnAttach() override;
  void OnProbe(const sim::ProbeEvent& event) override {
    if (!pipelined_) {
      Encode(event);
      return;
    }
    staging_.push_back(event);
    if (staging_.size() == staging_capacity_) EnqueueStaging();
  }
  void OnProbeBatch(std::span<const sim::ProbeEvent> events) override {
    if (!pipelined_) {
      if (sampling_) {
        // Jump the skip counter across whole stretches of the batch — the
        // per-event work between kept records is a subtraction, not a
        // call.  Draw-for-draw identical to Encode()'s per-event path.
        std::size_t i = 0;
        while (i < events.size()) {
          const std::size_t remaining = events.size() - i;
          if (skip_ >= remaining) {
            skip_ -= remaining;
            sampled_out_ += remaining;
            return;
          }
          i += static_cast<std::size_t>(skip_);
          sampled_out_ += skip_;
          skip_ = NextGap();
          EncodeRecord(events[i]);
          ++i;
        }
        return;
      }
      for (const sim::ProbeEvent& event : events) Encode(event);
      return;
    }
    std::size_t offset = 0;
    while (offset < events.size()) {
      const std::size_t take = std::min(staging_capacity_ - staging_.size(),
                                        events.size() - offset);
      staging_.insert(staging_.end(), events.begin() + offset,
                      events.begin() + offset + take);
      offset += take;
      if (staging_.size() == staging_capacity_) EnqueueStaging();
    }
  }

  /// Flushes the open block, writes the trailer, and closes the file.
  /// Idempotent.  Throws TraceError on I/O failure (including one hit by
  /// the pipeline worker mid-stream).
  void Finish();

  /// Counters are final once Finish() has returned; while a pipelined
  /// capture is in flight they trail the events already handed over.
  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint64_t records_sampled_out() const {
    return sampled_out_;
  }
  [[nodiscard]] std::uint64_t blocks_written() const { return blocks_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void Encode(const sim::ProbeEvent& event);
  void EncodeRecord(const sim::ProbeEvent& event);
  void FlushBlock();
  void WriteOrThrow(const void* data, std::size_t size);
  void EnqueueStaging();
  void WorkerLoop();
  void JoinWorker();
  std::uint64_t NextGap();

  std::string path_;
  TraceWriterOptions options_;
  std::FILE* file_ = nullptr;
  bool finished_ = false;

  /// Encoded payload of the open block.  Capacity is fixed at
  /// block_records × kMaxRecordBytes, so Encode() never reallocates and
  /// needs no per-record capacity check.
  std::vector<std::uint8_t> payload_;
  std::size_t payload_used_ = 0;
  std::uint32_t block_record_count_ = 0;

  // Per-block predictors (format.h): reset at every block boundary.
  std::uint64_t prev_time_bits_ = 0;
  std::uint32_t prev_src_host_ = 0;
  std::uint32_t prev_src_address_ = 0;

  bool sampling_ = false;
  prng::SplitMix64 sampler_;
  /// Geometric gap-sampling state: records left to skip before the next
  /// kept one, and 1/log(1-sample_rate) for drawing the next gap.
  std::uint64_t skip_ = 0;
  double inv_log1m_rate_ = 0.0;

  std::uint64_t records_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t bytes_ = 0;
  double last_time_ = 0.0;

  // Pipelined mode.  The simulation thread appends raw events to
  // `staging_` and hands full buffers to `queue_`; the worker drains the
  // queue in order, runs Encode()/FlushBlock() (which only it touches
  // once the thread is live), and recycles empty buffers through `free_`.
  bool pipelined_ = false;
  std::size_t staging_capacity_ = 0;
  std::vector<sim::ProbeEvent> staging_;
  std::deque<std::vector<sim::ProbeEvent>> queue_;
  std::vector<std::vector<sim::ProbeEvent>> free_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable space_ready_;
  std::thread worker_;
  bool stop_ = false;
  std::exception_ptr worker_error_;  ///< First worker failure; see mutex_.
};

}  // namespace hotspots::trace
