#!/usr/bin/env bash
# CI entry point: the tier-1 verify (ROADMAP.md), a metrics smoke step,
# an obs-trace smoke step (timeline/timeseries sidecars + perf_report), a
# trace capture/replay smoke step, an ingest smoke step (telescope_server
# fed by telescope_load over loopback, gauges diffed against the embedded
# run), a chaos smoke step (the same ingest under injected mid-frame
# disconnects with reconnect-resume — gauges must stay bit-identical),
# a fault-injection smoke step, a sanitizer pass (which fronts the
# trace-salvage suites verbosely), a tsan pass over the concurrent
# suites, and a UBSan-only pass over the full tier-1 suite.
#
#   ./ci.sh            # tier-1 + smoke steps + asan presets
#   ./ci.sh --fast     # tier-1 only
#
# The sanitizer preset builds into its own tree (build-asan/) so it never
# disturbs the primary build directory.  Sanitizer choice follows the
# HOTSPOTS_SANITIZE cache option (asan = Address+UB, tsan = Thread); CI
# runs asan by default — override with HOTSPOTS_SANITIZE=tsan ./ci.sh.
#
# The metrics smoke step exercises the observability layer end to end:
# a scaled-down fig5a run must produce a valid --metrics-out sidecar, and
# micro_hotpath (timers off) must stay within HOTSPOTS_OVERHEAD_TOL percent
# (default 15 — single-run container noise; see below) of the committed
# "after-prefold" baseline at the same scale, with a bit-identical
# fingerprint; a timers-on rerun must keep the fingerprint.
# ("after-prefold" carries the same clean fingerprint as "after-shard" —
# the observer pre-fold changed no clean run output — and supersedes it as
# the throughput baseline; "after-shard" had superseded "after-obs" when
# per-scanner loss streams changed faulted probe streams.)
# HOTSPOTS_OVERHEAD_SCALE (default 1.0) must match a recorded baseline's
# scale — gate comparisons across scales are meaningless.  Set
# HOTSPOTS_SKIP_OVERHEAD_GATE=1 to skip the slow gate runs (the sidecar
# validation still runs).
set -euo pipefail
cd "$(dirname "$0")"

SANITIZER="${HOTSPOTS_SANITIZE:-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== tier-1 passed (smoke + sanitizer passes skipped: --fast) =="
  exit 0
fi

echo "== metrics smoke: --metrics-out sidecar + overhead gate =="
SMOKE_DIR="$(mktemp -d)"
INGEST_PID=""
cleanup() {
  [[ -n "${INGEST_PID}" ]] && kill "${INGEST_PID}" 2>/dev/null || true
  rm -rf "${SMOKE_DIR}"
}
trap cleanup EXIT
HOTSPOTS_TRIALS=2 ./build/bench/fig5a_hitlist_infection 0.05 \
  --metrics-out "${SMOKE_DIR}/fig5a.metrics.json" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/fig5a.metrics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as handle:
    doc = json.load(handle)
assert doc["schema"] == "hotspots.metrics.v1", doc.get("schema")
for key in ("bench", "timers_enabled", "counters", "gauges", "histograms",
            "study"):
    assert key in doc, f"missing key: {key}"
assert doc["counters"]["engine.probes"] > 0
assert doc["study"]["trials"] > 0
assert doc["study"]["segments"], "merged telemetry lost its segments"
print("metrics sidecar OK:", len(doc["counters"]), "counters,",
      len(doc["study"]["segments"]), "study segments")
PY
else
  # Minimal fallback when python3 is unavailable: key presence only.
  for key in '"schema": "hotspots.metrics.v1"' '"counters"' '"study"'; do
    grep -qF "${key}" "${SMOKE_DIR}/fig5a.metrics.json" \
      || { echo "metrics sidecar missing ${key}" >&2; exit 1; }
  done
  echo "metrics sidecar OK (grep fallback)"
fi

if [[ "${HOTSPOTS_SKIP_OVERHEAD_GATE:-0}" != "1" ]]; then
  # The acceptance criterion for the obs layer is ≤2% mean overhead under
  # interleaved A/B runs, but a SINGLE run on a shared container jitters by
  # ±10-15%, so the default single-run floor is wider; tighten
  # HOTSPOTS_OVERHEAD_TOL on quiet dedicated hardware.
  OVERHEAD_TOL="${HOTSPOTS_OVERHEAD_TOL:-15}"
  OVERHEAD_SCALE="${HOTSPOTS_OVERHEAD_SCALE:-1.0}"
  # Timers off: throughput and fingerprint against the committed baseline.
  # The baseline was recorded at the same scale on the reference machine;
  # raise HOTSPOTS_OVERHEAD_TOL (or skip) when gating on slower hardware.
  HOTSPOTS_OBS_TIMERS=0 ./build/bench/micro_hotpath "${OVERHEAD_SCALE}" \
    --label ci-off --out "${SMOKE_DIR}/hotpath.json" \
    --gate after-prefold --gate-file results/BENCH_hotpath.json \
    --gate-tolerance "${OVERHEAD_TOL}"
  # Timers on: throughput is expected to drop, but the simulation output
  # must stay bit-identical to the timers-off run just recorded.
  HOTSPOTS_OBS_TIMERS=1 ./build/bench/micro_hotpath "${OVERHEAD_SCALE}" \
    --label ci-on --out "${SMOKE_DIR}/hotpath.json" \
    --gate ci-off --gate-file "${SMOKE_DIR}/hotpath.json" \
    --gate-fingerprint-only
else
  echo "overhead gate skipped (HOTSPOTS_SKIP_OVERHEAD_GATE=1)"
fi

echo "== shard smoke: fingerprint invariance at 1 and 8 shards =="
# The sharded engine's contract is that the run fingerprint — series,
# delivery counts, every sensor's histogram/alert state — is bit-identical
# at any shard count.  Record a 1-shard run, then gate an 8-shard run
# against it fingerprint-only: throughput is not compared (CI containers
# are often single-core, where extra shards can only add overhead).
HOTSPOTS_OBS_TIMERS=0 ./build/bench/micro_hotpath 0.05 --shards 1 \
  --label ci-shard1 --out "${SMOKE_DIR}/shards.json"
HOTSPOTS_OBS_TIMERS=0 ./build/bench/micro_hotpath 0.05 --shards 8 \
  --label ci-shard8 --out "${SMOKE_DIR}/shards.json" \
  --gate ci-shard1 --gate-file "${SMOKE_DIR}/shards.json" \
  --gate-fingerprint-only
# Same contract with a fault schedule active: delivery faults draw from
# per-scanner streams and outage windows fold per step, so the faulted
# fingerprint must be shard-count invariant too (the faulted probe stream
# legitimately differs from the clean one — the gate is 1-vs-8, not
# faulted-vs-clean).
CI_FAULTS='seed:7;loss:0.02;dup:0.01;acl:20.0.0.0/16@400;outages:0.3:2000'
HOTSPOTS_OBS_TIMERS=0 ./build/bench/micro_hotpath 0.05 --shards 1 \
  --faults "${CI_FAULTS}" \
  --label ci-faulted-shard1 --out "${SMOKE_DIR}/shards.json"
HOTSPOTS_OBS_TIMERS=0 ./build/bench/micro_hotpath 0.05 --shards 8 \
  --faults "${CI_FAULTS}" \
  --label ci-faulted-shard8 --out "${SMOKE_DIR}/shards.json" \
  --gate ci-faulted-shard1 --gate-file "${SMOKE_DIR}/shards.json" \
  --gate-fingerprint-only

echo "== obs-trace smoke: timeline + timeseries sidecars + perf_report =="
# A traced, sampled 8-shard run must (a) keep the simulation fingerprint
# bit-identical to the untraced ci-shard1 run recorded above (spans observe,
# never steer), (b) emit a structurally valid Chrome trace-event timeline —
# balanced B/E per tid, monotone timestamps, drop accounting present — plus
# a hotspots.timeseries.v1 sidecar, and (c) feed both through perf_report
# cleanly (exit 0).
HOTSPOTS_OBS_TIMERS=0 ./build/bench/micro_hotpath 0.05 --shards 8 \
  --timeline-out "${SMOKE_DIR}/hotpath.timeline.json" \
  --timeseries-out "${SMOKE_DIR}/hotpath.timeseries.json" \
  --label ci-traced --out "${SMOKE_DIR}/shards.json" \
  --gate ci-shard1 --gate-file "${SMOKE_DIR}/shards.json" \
  --gate-fingerprint-only
if command -v python3 > /dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/hotpath.timeline.json" \
    "${SMOKE_DIR}/hotpath.timeseries.json" <<'PY'
import json, sys
with open(sys.argv[1]) as handle:
    timeline = json.load(handle)
assert timeline["schema"] == "hotspots.timeline.v1", timeline.get("schema")
assert "dropped" in timeline, "drop accounting missing"
events = timeline["traceEvents"]
assert events, "traced run produced no events"
depth, last_ts = {}, {}
for event in events:
    tid, ph, ts = event["tid"], event["ph"], event["ts"]
    if ph == "M":
        continue
    assert ph in ("B", "E"), f"unexpected phase {ph}"
    assert ts >= last_ts.get(tid, 0.0), f"timestamp regressed on tid {tid}"
    last_ts[tid] = ts
    depth[tid] = depth.get(tid, 0) + (1 if ph == "B" else -1)
    assert depth[tid] >= 0, f"E before B on tid {tid}"
assert all(d == 0 for d in depth.values()), f"unbalanced B/E: {depth}"
names = {e["name"] for e in events if e["ph"] == "B"}
for required in ("engine.run", "engine.step", "engine.generate",
                 "engine.commit"):
    assert required in names, f"missing span {required}: {sorted(names)}"
with open(sys.argv[2]) as handle:
    series = json.load(handle)
assert series["schema"] == "hotspots.timeseries.v1", series.get("schema")
assert series["samples"] >= 2, "sampler took fewer than two samples"
assert "engine.probes" in series["counters"], "probes series missing"
print(f"timeline OK: {sum(1 for e in events if e['ph'] == 'B')} spans over "
      f"{len(depth)} lanes, {timeline['dropped']} dropped; "
      f"timeseries OK: {series['samples']} samples")
PY
else
  for key in '"schema":"hotspots.timeline.v1"' '"dropped"' '"ph":"B"'; do
    grep -qF "${key}" "${SMOKE_DIR}/hotpath.timeline.json" \
      || { echo "timeline sidecar missing ${key}" >&2; exit 1; }
  done
  grep -qF '"schema":"hotspots.timeseries.v1"' \
    "${SMOKE_DIR}/hotpath.timeseries.json" \
    || { echo "timeseries sidecar missing schema" >&2; exit 1; }
  echo "timeline + timeseries OK (grep fallback)"
fi
./build/tools/perf_report --timeline "${SMOKE_DIR}/hotpath.timeline.json" \
  --timeseries "${SMOKE_DIR}/hotpath.timeseries.json" > /dev/null
echo "obs-trace smoke OK"

echo "== trace smoke: capture -> validate -> replay -> diff =="
# End-to-end exercise of the src/trace subsystem: a small fig1 run captures
# a probe trace plus a live metrics sidecar; trace_tool must validate the
# file (CRC walk) and replay it through the IMS telescope; the replayed
# per-sensor gauges must equal the live run's bit for bit.
./build/bench/fig1_blaster_hotspots 0.05 \
  --trace-out "${SMOKE_DIR}/fig1.trace" \
  --metrics-out "${SMOKE_DIR}/fig1.live.metrics.json" > /dev/null
./build/tools/trace_tool validate "${SMOKE_DIR}/fig1.trace"
./build/tools/trace_tool replay "${SMOKE_DIR}/fig1.trace" --ims \
  --alert-threshold 100 \
  --metrics-out "${SMOKE_DIR}/fig1.replay.metrics.json" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/fig1.live.metrics.json" \
    "${SMOKE_DIR}/fig1.replay.metrics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as handle:
    live = json.load(handle)["gauges"]
with open(sys.argv[2]) as handle:
    replayed = json.load(handle)["gauges"]
# Per-sensor probe counts, unique sources, and alert times must replay
# bit-identically.  .rate_per_sec is skipped: it divides by the run
# duration, which the trace does not carry (only event times).
keys = sorted(k for k in live
              if k.startswith("telescope.sensor.")
              and not k.endswith(".rate_per_sec"))
assert keys, "live sidecar has no telescope.sensor.* gauges"
mismatches = [(k, live[k], replayed.get(k)) for k in keys
              if replayed.get(k) != live[k]]
assert not mismatches, f"replay diverged from live run: {mismatches}"
nonzero = sum(1 for k in keys if k.endswith(".probes") and live[k] > 0)
assert nonzero > 0, "no sensor saw probes — smoke scenario regressed"
print(f"trace replay OK: {len(keys)} sensor gauges identical, "
      f"{nonzero} sensors nonzero")
PY
else
  # Fallback: the replay sidecar must at least carry sensor gauges.
  grep -qF '"telescope.sensor.' "${SMOKE_DIR}/fig1.replay.metrics.json" \
    || { echo "replay sidecar has no sensor gauges" >&2; exit 1; }
  echo "trace replay OK (grep fallback: sensor gauges present)"
fi

echo "== ingest smoke: telescope_server + telescope_load over loopback =="
# Telescope-as-a-service end to end: the daemon (IMS fleet, same
# construction as `trace_tool replay --ims`) ingests the fig1 corpus over
# 8 concurrent connections; a live HTTP /metrics poll must then show
# per-sensor gauges bit-identical to the embedded fig1 run's sidecar
# (.rate_per_sec excluded — the trace carries event times, not the run
# duration), and SIGTERM must drain gracefully to exit 0.
./build/tools/telescope_server --ims --alert-threshold 100 \
  > "${SMOKE_DIR}/ingest.server.log" 2>&1 &
INGEST_PID=$!
INGEST_PORT=""
for _ in $(seq 1 100); do
  INGEST_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' \
    "${SMOKE_DIR}/ingest.server.log")"
  [[ -n "${INGEST_PORT}" ]] && break
  if ! kill -0 "${INGEST_PID}" 2>/dev/null; then
    echo "telescope_server died before binding:" >&2
    cat "${SMOKE_DIR}/ingest.server.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${INGEST_PORT}" ]]; then
  echo "telescope_server never reported its port" >&2
  cat "${SMOKE_DIR}/ingest.server.log" >&2
  exit 1
fi
./build/tools/telescope_load "${SMOKE_DIR}/fig1.trace" \
  --port "${INGEST_PORT}" --connections 8
if command -v python3 > /dev/null 2>&1; then
  python3 - "${INGEST_PORT}" "${SMOKE_DIR}/fig1.live.metrics.json" <<'PY'
import json, sys, urllib.request
with urllib.request.urlopen(
        f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10) as response:
    served = json.load(response)
assert served["schema"] == "hotspots.metrics.v1", served.get("schema")
assert served["counters"]["serve.ingest.records"] > 0
assert served["counters"]["serve.ingest.sequence_gaps"] == 0
with open(sys.argv[2]) as handle:
    live = json.load(handle)["gauges"]
gauges = served["gauges"]
keys = sorted(k for k in live
              if k.startswith("telescope.sensor.")
              and not k.endswith(".rate_per_sec"))
assert keys, "live sidecar has no telescope.sensor.* gauges"
mismatches = [(k, live[k], gauges.get(k)) for k in keys
              if gauges.get(k) != live[k]]
assert not mismatches, f"served gauges diverged from live run: {mismatches}"
print(f"ingest metrics OK: {len(keys)} sensor gauges identical, "
      f"{served['counters']['serve.ingest.records']:.0f} records over "
      f"{served['counters']['serve.ingest.connections']:.0f} connections")
PY
else
  echo "ingest HTTP diff skipped (no python3)"
fi
kill -TERM "${INGEST_PID}"
if ! wait "${INGEST_PID}"; then
  echo "telescope_server exited non-zero on SIGTERM drain:" >&2
  cat "${SMOKE_DIR}/ingest.server.log" >&2
  exit 1
fi
INGEST_PID=""
grep -q "drained:" "${SMOKE_DIR}/ingest.server.log" \
  || { echo "server log has no drain summary" >&2; exit 1; }
echo "ingest smoke OK"

echo "== chaos smoke: injected disconnects + reconnect-resume over loopback =="
# The robustness contract end to end: the same fig1 corpus over 8
# connections, but the client's chaos shim (src/serve/chaos.h) cuts
# connections mid-frame, resets sockets, and splits writes; reconnect-
# with-resume must absorb every cut, and the daemon's folded state —
# every per-sensor gauge — must come out bit-identical to the clean
# embedded run, with zero unrecovered sequence gaps.
./build/tools/telescope_server --ims --alert-threshold 100 \
  > "${SMOKE_DIR}/chaos.server.log" 2>&1 &
INGEST_PID=$!
CHAOS_PORT=""
for _ in $(seq 1 100); do
  CHAOS_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' \
    "${SMOKE_DIR}/chaos.server.log")"
  [[ -n "${CHAOS_PORT}" ]] && break
  if ! kill -0 "${INGEST_PID}" 2>/dev/null; then
    echo "telescope_server died before binding:" >&2
    cat "${SMOKE_DIR}/chaos.server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "${CHAOS_PORT}" ]] \
  || { echo "chaos telescope_server never reported its port" >&2; exit 1; }
./build/tools/telescope_load "${SMOKE_DIR}/fig1.trace" \
  --port "${CHAOS_PORT}" --connections 8 --retries 64 \
  --chaos 'seed:1311;disconnect:0.08;reset:0.03;shortwrite:0.25' \
  | tee "${SMOKE_DIR}/chaos.load.log"
grep -q "injected cuts" "${SMOKE_DIR}/chaos.load.log" \
  || { echo "chaos run injected no faults — shim inert?" >&2; exit 1; }
if command -v python3 > /dev/null 2>&1; then
  python3 - "${CHAOS_PORT}" "${SMOKE_DIR}/fig1.live.metrics.json" <<'PY'
import json, sys, urllib.request
with urllib.request.urlopen(
        f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10) as response:
    served = json.load(response)
counters = served["counters"]
assert counters["serve.ingest.records"] > 0
# Every chaos cut must have been resumed: sequence_gaps counts missing
# sequences the fold STEPPED OVER, and a bit-identical run allows none.
assert counters["serve.ingest.sequence_gaps"] == 0, \
    f"unrecovered gaps: {counters['serve.ingest.sequence_gaps']}"
with open(sys.argv[2]) as handle:
    live = json.load(handle)["gauges"]
gauges = served["gauges"]
keys = sorted(k for k in live
              if k.startswith("telescope.sensor.")
              and not k.endswith(".rate_per_sec"))
assert keys, "live sidecar has no telescope.sensor.* gauges"
mismatches = [(k, live[k], gauges.get(k)) for k in keys
              if gauges.get(k) != live[k]]
assert not mismatches, f"chaos run diverged from clean run: {mismatches}"
dupes = counters.get("serve.ingest.duplicate_blocks", 0)
print(f"chaos metrics OK: {len(keys)} sensor gauges bit-identical, "
      f"{dupes:.0f} duplicate blocks absorbed, 0 sequence gaps")
PY
else
  echo "chaos HTTP diff skipped (no python3)"
fi
kill -TERM "${INGEST_PID}"
if ! wait "${INGEST_PID}"; then
  echo "telescope_server exited non-zero on SIGTERM drain:" >&2
  cat "${SMOKE_DIR}/chaos.server.log" >&2
  exit 1
fi
INGEST_PID=""
echo "chaos smoke OK"

if [[ "${HOTSPOTS_SKIP_OVERHEAD_GATE:-0}" != "1" ]]; then
  # Capture-overhead gate: a sampled TraceWriter teed into the hot path
  # must cost <= HOTSPOTS_TRACE_OVERHEAD_TOL percent (default 10) against
  # an interleaved per-cycle baseline, with a bit-identical simulation
  # fingerprint.  Full-fidelity capture is reported in the same JSON entry
  # as an informational figure (encode+CRC+I/O cannot hit 10% of a ~30 ns
  # probe loop on one core).
  TRACE_OVERHEAD_TOL="${HOTSPOTS_TRACE_OVERHEAD_TOL:-10}"
  ./build/bench/micro_hotpath "${HOTSPOTS_OVERHEAD_SCALE:-1.0}" \
    --label ci-trace --trace-overhead \
    --trace-out "${SMOKE_DIR}/hotpath.trace" \
    --overhead-tolerance "${TRACE_OVERHEAD_TOL}" \
    --out "${SMOKE_DIR}/hotpath.json"
else
  echo "trace overhead gate skipped (HOTSPOTS_SKIP_OVERHEAD_GATE=1)"
fi

echo "== fault smoke: outage bench + degradation accounting =="
# Detector visibility under injected sensor outages (EXPERIMENTS.md,
# "Fault injection").  The bench itself hard-fails unless the outbreak
# (total probes, infected fraction) is bit-identical across all sweep
# points — outages must only remove what sensors *record* — so a zero
# exit already proves non-perturbation.  The sidecar must additionally
# carry the outage gauges and the study runner's loss accounting.
HOTSPOTS_TRIALS=2 ./build/bench/outage_visibility 0.02 \
  --metrics-out "${SMOKE_DIR}/outage.metrics.json" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/outage.metrics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as handle:
    doc = json.load(handle)
assert doc["schema"] == "hotspots.metrics.v1", doc.get("schema")
gauges = doc["gauges"]
assert gauges.get("telescope.outage.sensors", 0) > 0, \
    "no sensor carried an outage window"
assert doc["counters"].get("telescope.outage.missed_probes", 0) > 0, \
    "outage windows never intercepted a probe"
study = doc["study"]
for key in ("retries", "quarantined_trials"):
    assert key in study, f"study telemetry missing {key}"
assert study["segments"], "merged telemetry lost its segments"
for segment in study["segments"]:
    assert "lost_trials" in segment, f"segment missing lost_trials: {segment}"
    assert segment["lost_trials"] == 0, f"smoke run lost trials: {segment}"
print("outage sidecar OK:", int(gauges["telescope.outage.sensors"]),
      "sensors downed,", doc["counters"]["telescope.outage.missed_probes"],
      "probes missed,", len(study["segments"]), "segments")
PY
else
  for key in '"telescope.outage.sensors"' '"telescope.outage.missed_probes"' \
      '"lost_trials"'; do
    grep -qF "${key}" "${SMOKE_DIR}/outage.metrics.json" \
      || { echo "outage sidecar missing ${key}" >&2; exit 1; }
  done
  echo "outage sidecar OK (grep fallback)"
fi
# trace_tool validate must exit non-zero on degenerate files: a
# header-only truncation (no blocks, no trailer) from the trace captured
# by the smoke step above.  The zero-record (header + trailer only) case
# is pinned by tests/trace_corruption_test.cc.
head -c 48 "${SMOKE_DIR}/fig1.trace" > "${SMOKE_DIR}/headonly.trace"
if ./build/tools/trace_tool validate "${SMOKE_DIR}/headonly.trace" \
    > /dev/null 2>&1; then
  echo "trace_tool validate accepted a header-only trace" >&2; exit 1
fi
echo "fault smoke OK"

echo "== sanitizer pass: HOTSPOTS_SANITIZE=${SANITIZER} =="
cmake -B "build-${SANITIZER}" -S . -DHOTSPOTS_SANITIZE="${SANITIZER}"
cmake --build "build-${SANITIZER}" -j "${JOBS}"
# Salvage/corruption suites first, verbosely: trace resync does raw
# buffer scans over damaged files — the most sanitizer-sensitive code
# in the tree — so a failure here is reported on its own before the
# full-suite run.
ctest --test-dir "build-${SANITIZER}" --output-on-failure \
  -R 'TraceSalvage|TraceCorruption|ValidateTraceFile'
ctest --test-dir "build-${SANITIZER}" --output-on-failure -j "${JOBS}"

echo "== tsan pass: sharded commit queue + span rings under the race detector =="
# The concurrent code in the tree: the engine-shard commit queue, the
# lock-free SPSC span rings with their cross-thread drain/adoption paths,
# the background metrics sampler, and the sharded counters snapshotted
# mid-write.  Run those suites under ThreadSanitizer even when the primary
# sanitizer pass was asan.  (When HOTSPOTS_SANITIZE=tsan was requested, the
# full-suite pass above already covered them.)
if [[ "${SANITIZER}" == "tsan" ]]; then
  echo "primary sanitizer pass already ran under tsan — skipped"
else
  cmake -B build-tsan -S . -DHOTSPOTS_SANITIZE=tsan
  cmake --build build-tsan -j "${JOBS}" \
    --target sim_engine_shard_test sim_study_retry_test sim_prefold_test \
    obs_span_test obs_sampler_test obs_metrics_test \
    obs_trace_determinism_test serve_fold_test serve_server_test \
    fault_determinism_test
  # Prefold* covers the two-phase observer fold: worker threads write
  # forked per-shard partials concurrently while the serial thread owns
  # the merge — the handoff the race detector exists to watch.  ObsSpan/
  # ObsSampler stress producer-vs-drain and sampler-vs-writer interleavings;
  # ObsTraceDeterminism drives the instrumented engine at 8 shards.
  # ServeFold/ServeServer are the ingest daemon's two-thread core: the
  # I/O-thread Submit vs fold-thread drain handoff, the resume/ack
  # mailboxes, and the full loopback server with concurrent client threads.
  # FaultDeterminism rides along: its GE-channel and loss-profile cases
  # drive the 4-shard engine with the delivery-fault hook on the commit
  # path, and the chaos e2e case in ServeServer crosses client retry
  # threads with the daemon's fold thread.
  ctest --test-dir build-tsan --output-on-failure \
    -R 'ShardPool|EngineShard|EngineAudit|ResolveEngineShards|RunTrials|Prefold|ObsSpan|ObsSampler|ObsTraceDeterminism|ObsCounter|SnapshotWhileWriting|ServeFold|ServeServer|FaultDeterminism'
fi

echo "== ubsan pass: tier-1 under -fsanitize=undefined alone =="
# The asan preset above already pairs address+undefined, but pure UBSan
# runs at near-native speed, so the *whole* tier-1 suite — including the
# timing-sensitive serve/ingest tests that would crawl under asan's
# interceptors — gets undefined-behavior coverage here.
if [[ "${SANITIZER}" == "ubsan" ]]; then
  echo "primary sanitizer pass already ran under ubsan — skipped"
else
  cmake -B build-ubsan -S . -DHOTSPOTS_SANITIZE=ubsan
  cmake --build build-ubsan -j "${JOBS}"
  ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}"
fi

echo "== ci.sh: all passes green =="
