#!/usr/bin/env bash
# CI entry point: the tier-1 verify (ROADMAP.md), a metrics smoke step,
# and a sanitizer pass.
#
#   ./ci.sh            # tier-1 + metrics smoke + asan presets
#   ./ci.sh --fast     # tier-1 only
#
# The sanitizer preset builds into its own tree (build-asan/) so it never
# disturbs the primary build directory.  Sanitizer choice follows the
# HOTSPOTS_SANITIZE cache option (asan = Address+UB, tsan = Thread); CI
# runs asan by default — override with HOTSPOTS_SANITIZE=tsan ./ci.sh.
#
# The metrics smoke step exercises the observability layer end to end:
# a scaled-down fig5a run must produce a valid --metrics-out sidecar, and
# micro_hotpath (timers off) must stay within HOTSPOTS_OVERHEAD_TOL percent
# (default 15 — single-run container noise; see below) of the committed
# "after-obs" baseline at the same scale, with a bit-identical fingerprint;
# a timers-on rerun must keep the fingerprint.
# HOTSPOTS_OVERHEAD_SCALE (default 1.0) must match a recorded baseline's
# scale — gate comparisons across scales are meaningless.  Set
# HOTSPOTS_SKIP_OVERHEAD_GATE=1 to skip the slow gate runs (the sidecar
# validation still runs).
set -euo pipefail
cd "$(dirname "$0")"

SANITIZER="${HOTSPOTS_SANITIZE:-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== tier-1 passed (metrics smoke + sanitizer passes skipped: --fast) =="
  exit 0
fi

echo "== metrics smoke: --metrics-out sidecar + overhead gate =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
HOTSPOTS_TRIALS=2 ./build/bench/fig5a_hitlist_infection 0.05 \
  --metrics-out "${SMOKE_DIR}/fig5a.metrics.json" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/fig5a.metrics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as handle:
    doc = json.load(handle)
assert doc["schema"] == "hotspots.metrics.v1", doc.get("schema")
for key in ("bench", "timers_enabled", "counters", "gauges", "histograms",
            "study"):
    assert key in doc, f"missing key: {key}"
assert doc["counters"]["engine.probes"] > 0
assert doc["study"]["trials"] > 0
assert doc["study"]["segments"], "merged telemetry lost its segments"
print("metrics sidecar OK:", len(doc["counters"]), "counters,",
      len(doc["study"]["segments"]), "study segments")
PY
else
  # Minimal fallback when python3 is unavailable: key presence only.
  for key in '"schema": "hotspots.metrics.v1"' '"counters"' '"study"'; do
    grep -qF "${key}" "${SMOKE_DIR}/fig5a.metrics.json" \
      || { echo "metrics sidecar missing ${key}" >&2; exit 1; }
  done
  echo "metrics sidecar OK (grep fallback)"
fi

if [[ "${HOTSPOTS_SKIP_OVERHEAD_GATE:-0}" != "1" ]]; then
  # The acceptance criterion for the obs layer is ≤2% mean overhead under
  # interleaved A/B runs, but a SINGLE run on a shared container jitters by
  # ±10-15%, so the default single-run floor is wider; tighten
  # HOTSPOTS_OVERHEAD_TOL on quiet dedicated hardware.
  OVERHEAD_TOL="${HOTSPOTS_OVERHEAD_TOL:-15}"
  OVERHEAD_SCALE="${HOTSPOTS_OVERHEAD_SCALE:-1.0}"
  # Timers off: throughput and fingerprint against the committed baseline.
  # The baseline was recorded at the same scale on the reference machine;
  # raise HOTSPOTS_OVERHEAD_TOL (or skip) when gating on slower hardware.
  HOTSPOTS_OBS_TIMERS=0 ./build/bench/micro_hotpath "${OVERHEAD_SCALE}" \
    --label ci-off --out "${SMOKE_DIR}/hotpath.json" \
    --gate after-obs --gate-file results/BENCH_hotpath.json \
    --gate-tolerance "${OVERHEAD_TOL}"
  # Timers on: throughput is expected to drop, but the simulation output
  # must stay bit-identical to the timers-off run just recorded.
  HOTSPOTS_OBS_TIMERS=1 ./build/bench/micro_hotpath "${OVERHEAD_SCALE}" \
    --label ci-on --out "${SMOKE_DIR}/hotpath.json" \
    --gate ci-off --gate-file "${SMOKE_DIR}/hotpath.json" \
    --gate-fingerprint-only
else
  echo "overhead gate skipped (HOTSPOTS_SKIP_OVERHEAD_GATE=1)"
fi

echo "== sanitizer pass: HOTSPOTS_SANITIZE=${SANITIZER} =="
cmake -B "build-${SANITIZER}" -S . -DHOTSPOTS_SANITIZE="${SANITIZER}"
cmake --build "build-${SANITIZER}" -j "${JOBS}"
ctest --test-dir "build-${SANITIZER}" --output-on-failure -j "${JOBS}"

echo "== ci.sh: all passes green =="
