#!/usr/bin/env bash
# CI entry point: the tier-1 verify (ROADMAP.md) plus a sanitizer pass.
#
#   ./ci.sh            # tier-1 + asan presets
#   ./ci.sh --fast     # tier-1 only
#
# The sanitizer preset builds into its own tree (build-asan/) so it never
# disturbs the primary build directory.  Sanitizer choice follows the
# HOTSPOTS_SANITIZE cache option (asan = Address+UB, tsan = Thread); CI
# runs asan by default — override with HOTSPOTS_SANITIZE=tsan ./ci.sh.
set -euo pipefail
cd "$(dirname "$0")"

SANITIZER="${HOTSPOTS_SANITIZE:-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== tier-1 passed (sanitizer pass skipped: --fast) =="
  exit 0
fi

echo "== sanitizer pass: HOTSPOTS_SANITIZE=${SANITIZER} =="
cmake -B "build-${SANITIZER}" -S . -DHOTSPOTS_SANITIZE="${SANITIZER}"
cmake --build "build-${SANITIZER}" -j "${JOBS}"
ctest --test-dir "build-${SANITIZER}" --output-on-failure -j "${JOBS}"

echo "== ci.sh: all passes green =="
