// Ablation — one table across the PRNG lineage of real worms.
//
// Puts every targeting algorithm in the library through the same
// observation harness (a /16-scale darknet, per-/24 histogram) and reports
// coverage + uniformity side by side: the uniform baseline, CodeRed v1's
// static seed (every instance identical), the re-seeded CRv1.5, Slammer's
// OR-bug LCG, Witty's structured two-state construction, Blaster's
// boot-seeded sequential sweep, and CodeRedII's deliberate local
// preference.  The point of the paper in one table: *every* real lineage
// deviates measurably from uniform, each through a different root cause.
#include <cstdio>
#include <memory>
#include <unordered_set>
#include <vector>

#include "analysis/uniformity.h"
#include "bench_util.h"
#include "sim/study.h"
#include "telescope/telescope.h"
#include "worms/blaster.h"
#include "worms/codered1.h"
#include "worms/codered2.h"
#include "worms/slammer.h"
#include "worms/uniform.h"
#include "worms/witty.h"

using namespace hotspots;

namespace {

struct LineageRow {
  std::string name;
  std::uint64_t distinct_targets = 0;
  double top_slash16_share = 0.0;
  analysis::UniformityReport report;
};

/// Profiles the *targeting distribution itself*: a per-/16 histogram of
/// every emitted probe across the whole space, rather than a single remote
/// darknet — this is the full-information view of the bias.
LineageRow Profile(const sim::Worm& worm, int instances, int probes_each,
                   std::uint64_t seed) {
  prng::Xoshiro256 rng{seed};
  std::unordered_set<std::uint32_t> distinct;
  std::vector<std::uint64_t> per_slash16(1u << 16, 0);
  std::uint64_t total = 0;
  sim::Host host;
  for (int h = 0; h < instances; ++h) {
    host.address = net::Ipv4{rng.NextU32() | 0x01000000u};
    auto scanner = worm.MakeScanner(host, rng.Next());
    for (int p = 0; p < probes_each; ++p) {
      const net::Ipv4 target = scanner->NextTarget(rng);
      distinct.insert(target.value());
      ++per_slash16[target.Slash16()];
      ++total;
    }
  }

  LineageRow row;
  row.name = std::string{worm.name()};
  row.distinct_targets = distinct.size();
  std::uint64_t top = 0;
  for (const std::uint64_t c : per_slash16) top = std::max(top, c);
  row.top_slash16_share =
      total == 0 ? 0.0 : static_cast<double>(top) / static_cast<double>(total);
  row.report = analysis::AnalyzeUniformity(per_slash16);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Ablation", "hotspot severity across the worm PRNG lineage");

  const int instances = static_cast<int>(100 * scale) + 10;
  const int probes_each = static_cast<int>(300'000 * scale) + 10'000;
  std::printf("  %d instances x %d probes each; per-/16 histogram of every "
              "emitted probe\n\n",
              instances, probes_each);

  const worms::UniformWorm uniform;
  const worms::CodeRed1Worm crv1{true};
  const worms::CodeRed1Worm crv15{false};
  const worms::SlammerWorm slammer;
  const worms::WittyWorm witty;
  const worms::BlasterWorm blaster = worms::BlasterWorm::Paper();
  const worms::CodeRed2Worm crii;
  const std::vector<const sim::Worm*> lineage{
      &uniform, &crv1, &crv15, &slammer, &witty, &blaster, &crii};

  // Each lineage row is an independent profiling job with a fixed seed (the
  // table intentionally holds the harness seed constant), so the study
  // runner parallelizes the rows while the printed numbers stay identical
  // to a serial sweep at any thread count.
  sim::StudyOptions options;
  options.label = "lineage-rows";
  auto study = sim::RunStudy(
      options, static_cast<int>(lineage.size()),
      [&](int row, std::uint64_t /*seed*/) {
        return Profile(*lineage[static_cast<std::size_t>(row)], instances,
                       probes_each, 0x11EA6E);
      });

  std::printf("  %-14s %-16s %-14s %-10s %-10s %s\n", "worm",
              "distinct targets", "top-/16 share", "chi2/dof", "gini",
              "verdict");
  for (const LineageRow& row : study.trials) {
    std::printf("  %-14s %-16llu %-14.5f %-10.2f %-10.3f %s\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.distinct_targets),
                row.top_slash16_share,
                row.report.chi_square_dof > 0
                    ? row.report.chi_square / row.report.chi_square_dof
                    : 0.0,
                row.report.gini,
                row.report.LooksNonUniform() ? "HOTSPOTS" : "uniform-ish");
  }
  bench::Measured(
      "the uniform baseline passes; CRv1's static seed collapses coverage "
      "to one shared sequence (distinct targets ≈ probes of ONE instance); "
      "Blaster's boot-seeded sequential sweeps and CodeRedII's locality "
      "light up the /16 histogram; Slammer and Witty look uniform at /16 "
      "granularity — their bias is per-host (cycle confinement) and "
      "per-address (preimage structure), quantified by the fig3 bench and "
      "WittyPreimageCount instead. Different root causes need different "
      "lenses, which is the paper's taxonomy in practice.");
  bench::PrintStudyThroughput(study.telemetry,
                              static_cast<std::uint64_t>(instances) *
                                  static_cast<std::uint64_t>(probes_each) *
                                  study.trials.size());
  bench::DumpMetrics(metrics_out, "ablation_prng_lineage", &study.telemetry);
  bench::DumpTimeline(timeline_out);
  return 0;
}
