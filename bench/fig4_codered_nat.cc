// Figure 4 — (a) Observed unique CodeRedII source IPs by destination /24;
// (b, c) infection attempts from two quarantined CodeRedII hosts.
//
// (b)/(c) is the honeypot experiment: one CodeRedII instance emits ~7.57 M
// probes, first from a public address, then from 192.168.0.2 behind a NAT;
// the NATed run produces the M-block (192/8) spike.
//
// (a) is the aggregate view: a population of infected hosts, 15 % of them
// behind per-host NATs with 192.168/16 private addresses, observed from the
// IMS blocks.  NATed hosts' local preference aims at 192/8, so their leaked
// probes pile onto the M block, while public hosts' probes spread by the
// 1/8 uniform arm only.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/quarantine.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "trace/format.h"
#include "trace/writer.h"
#include "worms/codered2.h"

using namespace hotspots;

namespace {

void PrintBlocks(telescope::Telescope& ims, bool unique_sources) {
  std::printf("  %-6s %-12s %s\n", "block", "probes",
              unique_sources ? "unique sources" : "");
  for (std::size_t i = 0; i < ims.size(); ++i) {
    const auto& sensor = ims.sensor(static_cast<int>(i));
    std::printf("  %-6s %-12llu %llu\n", sensor.label().c_str(),
                static_cast<unsigned long long>(sensor.probe_count()),
                unique_sources
                    ? static_cast<unsigned long long>(
                          sensor.UniqueSourceCount())
                    : 0ull);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const std::string trace_out = bench::TraceOutArg(argc, argv);
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Figure 4", "CodeRedII, private address space, and the "
                           "M-block hotspot");

  // ---- (b)/(c): quarantined hosts -------------------------------------
  worms::CodeRed2Worm worm;
  const auto quarantine_probes =
      static_cast<std::uint64_t>(7'567'093 * scale);

  bench::Section("(b) quarantined host, public address 141.213.4.4");
  telescope::Telescope ims = telescope::MakeImsTelescope();
  auto public_scanner =
      worm.MakeQuarantineScanner(net::Ipv4{141, 213, 4, 4}, 0xC0DE);
  const auto public_result = core::RunQuarantine(
      *public_scanner, net::Ipv4{141, 213, 4, 4}, quarantine_probes, ims);
  std::printf("  emitted %llu probes, %llu reached monitored blocks\n",
              static_cast<unsigned long long>(public_result.probes_emitted),
              static_cast<unsigned long long>(public_result.probes_on_sensors));
  PrintBlocks(ims, false);
  bench::PaperSays("7,567,093 attempts; only a small number reach the "
                   "monitored blocks; no M spike.");

  bench::Section("(c) quarantined host, NATed at 192.168.0.2");
  ims.ResetAll();
  auto nat_scanner =
      worm.MakeQuarantineScanner(net::Ipv4{192, 168, 0, 2}, 0xC0DE);
  const auto nat_result = core::RunQuarantine(
      *nat_scanner, net::Ipv4{192, 168, 0, 2}, quarantine_probes, ims);
  std::printf("  emitted %llu probes, %llu reached monitored blocks\n",
              static_cast<unsigned long long>(nat_result.probes_emitted),
              static_cast<unsigned long long>(nat_result.probes_on_sensors));
  PrintBlocks(ims, false);
  bench::PaperSays("7,567,361 attempts; a distinct spike at the M block, "
                   "matching the darknet observations.");

  // ---- (a): aggregate observation -------------------------------------
  bench::Section("(a) aggregate: infected population with 15% behind NATs");
  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(2000 * scale) + 200;
  config.slash8_clusters = 20;
  config.nonempty_slash16s = 300;
  config.nat_fraction = 0.15;
  config.nat_site_mode = core::NatSiteMode::kPerHostSite;
  config.seed = 4;
  core::Scenario scenario = builder.BuildClustered(config);
  std::printf("  %u public hosts + %u NATed hosts (each its own gateway)\n",
              scenario.public_hosts, scenario.natted_hosts);

  const topology::Reachability reachability{nullptr, &scenario.nats, nullptr,
                                            0.0};
  sim::EngineConfig engine_config;
  engine_config.scan_rate = 10.0;
  engine_config.end_time = 3000.0;  // 30k probes per host.
  engine_config.stop_at_infected_fraction = 2.0;  // Observational run.
  sim::Engine engine{scenario.population, worm, reachability, &scenario.nats,
                     engine_config};
  for (sim::HostId id = 0; id < scenario.population.size(); ++id) {
    engine.SeedInfection(id);
  }
  ims.ResetAll();
  // With --trace-out, a TraceWriter rides along on the same run through the
  // standard tee path, capturing the aggregate NAT-hotspot probe stream.
  std::unique_ptr<trace::TraceWriter> writer;
  if (!trace_out.empty()) {
    trace::Fingerprint scenario_fingerprint;
    scenario_fingerprint.MixString("fig4_codered_nat");
    scenario_fingerprint.Mix(config.total_hosts);
    scenario_fingerprint.Mix(config.seed);
    scenario_fingerprint.MixDouble(engine_config.end_time);
    trace::TraceWriterOptions writer_options;
    writer_options.scenario_fingerprint = scenario_fingerprint.hash;
    writer_options.seed = engine_config.seed;
    writer = std::make_unique<trace::TraceWriter>(trace_out, writer_options);
  }
  const sim::RunResult run = engine.Run({&ims, writer.get()});
  if (writer != nullptr) {
    writer->Finish();
    std::printf("  trace: %llu records in %llu blocks (%llu bytes) -> %s\n",
                static_cast<unsigned long long>(writer->records_written()),
                static_cast<unsigned long long>(writer->blocks_written()),
                static_cast<unsigned long long>(writer->bytes_written()),
                trace_out.c_str());
  }
  std::printf("  %llu probes emitted by %zu infected hosts\n",
              static_cast<unsigned long long>(run.total_probes),
              scenario.population.size());
  PrintBlocks(ims, true);

  // The M-block per-/24 histogram (the paper's Figure 4a spike).
  const auto* m_block = ims.FindByLabel("M/22");
  std::vector<std::uint64_t> counts;
  std::uint32_t m_sources_max = 0;
  for (const auto& row : m_block->Histogram()) {
    counts.push_back(row.stats.unique_sources);
    m_sources_max = std::max(m_sources_max, row.stats.unique_sources);
  }
  std::printf("  M/22 per-/24 unique sources: max %u across %zu /24s\n",
              m_sources_max, counts.size());
  bench::PaperSays("the distribution is clearly not uniform; a large hotspot "
                   "at the M block, explained by NATed hosts at 192.168.x.y "
                   "preferring 192/8.");
  bench::Measured("the M block's unique-source count towers over every other "
                  "small block; only the Z/8 (16M addresses) sees more "
                  "absolute traffic.");
  bench::DumpMetrics(metrics_out, "fig4_codered_nat");
  bench::DumpTimeline(timeline_out);
  return 0;
}
