// ingest_throughput — end-to-end benchmark of the telescope ingest
// daemon (src/serve): an in-process TelescopeServer on a loopback port,
// fed a deterministic synthetic corpus by the telescope_load replay
// machinery at fan-out, reporting what ISSUE 9 asks the service tier to
// be judged on:
//
//   * aggregate ingest throughput (records/s over the wire, ACK-bounded)
//   * ingest-to-fold latency p50/p99 (the serve.ingest.fold_latency_seconds
//     histogram: submit-on-I/O-thread → folded-on-fold-thread)
//   * first-alert wall latency (serving began → telescope's first
//     alert-threshold crossing on the fold thread)
//
// The run is self-gating: every record sent must be folded (the load
// generator's ACK barrier plus a records_sent == records_folded check),
// and the sensor's probe count must equal the corpus's sensor-directed
// record count — a throughput number that dropped records is a failure,
// not a result.  An entry is appended to results/BENCH_ingest.json.
//
// Usage: ingest_throughput [scale] [--connections N] [--rate R]
//                          [--loop N] [--label NAME] [--out FILE]
//                          [--corpus FILE] [--poller poll]
//                          [--metrics-out FILE]
//   scale         corpus size multiplier in (0, 64]; 1.0 ≈ 400k records
//   --connections fan-out (default 8, the acceptance floor)
//   --rate        aggregate records/s pacing (0 = unthrottled)
//   --loop        corpus replay count (sequences keep rising)
//   --corpus      where to write the synthetic trace
//                 (default /tmp/ingest_throughput.trace)
//   --poller      "poll" forces the portable poll(2) backend
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "prng/xoshiro.h"
#include "serve/load_client.h"
#include "serve/server.h"
#include "sim/observer.h"
#include "telescope/telescope.h"
#include "trace/writer.h"

using namespace hotspots;

namespace {

/// The synthetic threat's address pool: probes scatter over 60.0.0.0/8
/// with a 1-in-16 bias into the sensor block, like a local-preference
/// sweep grazing a darknet.
constexpr std::uint32_t kSensorBase = (60u << 24) | (5u << 16);  // 60.5/16

struct Corpus {
  std::uint64_t records = 0;
  std::uint64_t sensor_records = 0;
};

/// Writes `total` deterministic probe records through the real
/// TraceWriter so the bench corpus is a first-class hotspots.trace.v1
/// file (CRC-framed blocks, trailer), not a hand-rolled fixture.
Corpus WriteCorpus(const std::string& path, std::uint64_t total) {
  trace::TraceWriterOptions options;
  options.scenario_fingerprint = 0x1965BE7Cu;
  options.seed = 0x1965;
  trace::TraceWriter writer{path, options};
  writer.OnAttach();

  Corpus corpus;
  prng::Xoshiro256 rng{options.seed};
  std::vector<sim::ProbeEvent> batch;
  batch.reserve(8192);
  double time = 0.0;
  for (std::uint64_t i = 0; i < total; ++i) {
    // 64 probes per engine step keeps same-timestamp runs realistic for
    // the fold's per-step split/merge protocol.
    if (i % 64 == 0) time += 0.05;
    sim::ProbeEvent event;
    event.time = time;
    event.src_host = static_cast<sim::HostId>(i % 4096);
    event.src_address = net::Ipv4{(10u << 24) | rng.UniformBelow(20000)};
    if (rng.UniformBelow(16) == 0) {
      event.dst = net::Ipv4{kSensorBase | (rng.NextU32() & 0xFFFFu)};
    } else {
      // The scatter also grazes the sensor /16 (1/256 of the /8), so the
      // expected count is tallied from the destination, not the branch.
      event.dst = net::Ipv4{(60u << 24) | (rng.NextU32() & 0xFFFFFFu)};
    }
    if ((event.dst.value() & 0xFFFF0000u) == kSensorBase) {
      ++corpus.sensor_records;
    }
    batch.push_back(event);
    if (batch.size() == batch.capacity()) {
      writer.OnProbeBatch(batch);
      batch.clear();
    }
  }
  writer.OnProbeBatch(batch);
  writer.Finish();
  corpus.records = total;
  return corpus;
}

/// Histogram quantile: smallest bucket upper bound whose cumulative
/// count reaches q·count (upper bounds are inclusive, so this is the
/// tightest recorded ceiling on the q-quantile); the overflow bucket
/// reports the observed max.
double HistQuantile(const obs::HistogramSample& hist, double q) {
  if (hist.count == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(hist.count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
    cumulative += hist.buckets[i];
    if (cumulative >= target && target > 0) {
      return i < hist.bounds.size() ? hist.bounds[i] : hist.max;
    }
  }
  return hist.max;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  double scale = 1.0;
  std::string label = "run";
  std::string out_path = "results/BENCH_ingest.json";
  std::string corpus_path = "/tmp/ingest_throughput.trace";
  serve::LoadOptions load;
  load.connections = 8;
  serve::ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ingest_throughput: %s requires a value\n",
                     argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--label") == 0) {
      label = next();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--corpus") == 0) {
      corpus_path = next();
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      load.connections =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      const auto rate = bench::ParseDouble(next());
      if (!rate || *rate < 0.0) {
        std::fprintf(stderr, "ingest_throughput: bad --rate\n");
        return 2;
      }
      load.rate = *rate;
    } else if (std::strcmp(argv[i], "--loop") == 0) {
      load.loops =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--poller") == 0) {
      server_options.force_poll = std::strcmp(next(), "poll") == 0;
    } else {
      const auto parsed = bench::ParseDouble(argv[i]);
      if (!parsed || *parsed <= 0.0 || *parsed > 64.0) {
        std::fprintf(stderr,
                     "usage: %s [scale] [--connections N] [--rate R] "
                     "[--loop N] [--label NAME] [--out FILE] "
                     "[--corpus FILE] [--poller poll] "
                     "[--metrics-out FILE]\n",
                     argv[0]);
        return 2;
      }
      scale = *parsed;
    }
  }
  if (load.connections == 0 || load.loops == 0) {
    std::fprintf(stderr,
                 "ingest_throughput: --connections and --loop must be ≥ 1\n");
    return 2;
  }
  bench::Title("ingest_throughput", "telescope ingest daemon traffic bench");

  // ---- Corpus: a deterministic synthetic capture --------------------------
  const auto total_records =
      static_cast<std::uint64_t>(400'000.0 * scale);
  const Corpus written = WriteCorpus(corpus_path, total_records);
  const serve::CorpusIndex corpus{corpus_path};
  std::printf("corpus: %" PRIu64 " records in %zu blocks (%.2f MiB), "
              "%" PRIu64 " aimed at the sensor /16\n",
              corpus.total_records(), corpus.blocks().size(),
              static_cast<double>(corpus.bytes().size()) / (1024.0 * 1024.0),
              written.sensor_records);

  // ---- Daemon: one sensor telescope on an ephemeral loopback port ---------
  telescope::SensorOptions sensor_options;
  sensor_options.alert_threshold = 100;
  telescope::Telescope sensors;
  sensors.AddSensor("bench/16", net::Prefix{net::Ipv4{kSensorBase}, 16},
                    sensor_options);
  sensors.Build();
  sensors.OnAttach();

  serve::TelescopeServer server{sensors, server_options};
  server.set_before_snapshot([&] { sensors.PublishSensorMetrics(); });
  server.set_alert_probe([&] { return sensors.AlertedCount() > 0; });
  server.Bind();
  std::thread server_thread{[&] { server.Run(); }};

  // ---- Load: replay the corpus at fan-out, wait for every ACK -------------
  load.port = server.port();
  serve::LoadReport report;
  try {
    report = serve::RunLoad(corpus, load);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ingest_throughput: %s\n", error.what());
    server.RequestShutdown();
    server_thread.join();
    return 1;
  }
  server.RequestShutdown();
  server_thread.join();

  // ---- Results ------------------------------------------------------------
  const serve::FoldPipeline& fold = server.fold();
  const obs::Snapshot snapshot = obs::Registry::Global().TakeSnapshot();
  const obs::HistogramSample* latency =
      snapshot.FindHistogram("serve.ingest.fold_latency_seconds");
  const double p50 = latency ? HistQuantile(*latency, 0.50)
                             : std::numeric_limits<double>::quiet_NaN();
  const double p99 = latency ? HistQuantile(*latency, 0.99)
                             : std::numeric_limits<double>::quiet_NaN();
  const double first_alert = fold.first_alert_wall_seconds();

  std::vector<double> acks = report.ack_latency_seconds;
  std::sort(acks.begin(), acks.end());
  std::printf("ingest: %" PRIu64 " records (%" PRIu64 " blocks, %.2f MiB) "
              "over %u connections in %.3f s → %.0f records/s (poller %s)\n",
              report.records_sent, report.blocks_sent,
              static_cast<double>(report.bytes_sent) / (1024.0 * 1024.0),
              load.connections, report.wall_seconds, report.records_per_sec,
              server.poller_name());
  std::printf("fold:   %" PRIu64 " records in %" PRIu64 " blocks, "
              "%" PRIu64 " sequence gaps; latency p50 ≤ %.6f s, "
              "p99 ≤ %.6f s\n",
              fold.records_folded(), fold.blocks_folded(),
              fold.sequence_gaps(), p50, p99);
  if (!acks.empty()) {
    std::printf("acks:   fin-to-ack p50 %.6f s, max %.6f s\n",
                acks[acks.size() / 2], acks.back());
  }
  if (fold.alert_seen()) {
    std::printf("alert:  first telescope alert %.6f s (wall) after serving "
                "began\n",
                first_alert);
  }

  // ---- Gate: an unaccounted record disqualifies the numbers ---------------
  bool ok = true;
  if (fold.records_folded() != report.records_sent ||
      fold.sequence_gaps() != 0) {
    std::fprintf(stderr,
                 "ingest_throughput: FOLD LOSS — sent %" PRIu64
                 " records but folded %" PRIu64 " with %" PRIu64
                 " sequence gaps\n",
                 report.records_sent, fold.records_folded(),
                 fold.sequence_gaps());
    ok = false;
  }
  const std::uint64_t expected_sensor =
      written.sensor_records * load.loops;
  const std::uint64_t sensor_probes = sensors.sensor(0).probe_count();
  if (sensor_probes != expected_sensor) {
    std::fprintf(stderr,
                 "ingest_throughput: SENSOR MISMATCH — corpus carries "
                 "%" PRIu64 " sensor-directed records but the folded "
                 "telescope counted %" PRIu64 "\n",
                 expected_sensor, sensor_probes);
    ok = false;
  }
  if (!fold.alert_seen()) {
    std::fprintf(stderr,
                 "ingest_throughput: NO ALERT — the sensor saw %" PRIu64
                 " probes but never crossed threshold %" PRIu64 "\n",
                 sensor_probes, sensor_options.alert_threshold);
    ok = false;
  }

  // ---- JSON entry ---------------------------------------------------------
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.KV("label", label);
  writer.Key("scale").FixedValue(scale, 4);
  writer.KV("connections", static_cast<std::uint64_t>(load.connections));
  writer.Key("rate").FixedValue(load.rate, 0);
  writer.KV("loops", static_cast<std::uint64_t>(load.loops));
  writer.KV("poller", server.poller_name());
  writer.KV("records", report.records_sent);
  writer.KV("blocks", report.blocks_sent);
  writer.KV("bytes", report.bytes_sent);
  writer.Key("wall_seconds").FixedValue(report.wall_seconds, 4);
  writer.Key("records_per_sec").FixedValue(report.records_per_sec, 0);
  writer.Key("fold_latency_p50_seconds").FixedValue(p50, 6);
  writer.Key("fold_latency_p99_seconds").FixedValue(p99, 6);
  writer.Key("first_alert_wall_seconds").FixedValue(first_alert, 6);
  if (!acks.empty()) {
    writer.Key("ack_p50_seconds").FixedValue(acks[acks.size() / 2], 6);
    writer.Key("ack_max_seconds").FixedValue(acks.back(), 6);
  }
  writer.KV("sensor_probes", sensor_probes);
  writer.KV("sequence_gaps", fold.sequence_gaps());
  writer.KV("ok", ok);
  writer.EndObject();
  bench::AppendJsonEntry(out_path, writer.str(), "ingest_throughput");

  bench::DumpMetrics(metrics_out, "ingest_throughput");
  if (!ok) return 1;
  std::printf("ingest_throughput: PASS (%" PRIu64 " records accounted, "
              "alert raised)\n",
              report.records_sent);
  return 0;
}
