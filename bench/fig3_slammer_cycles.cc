// Figure 3 — (a, b) Slammer infection attempts from two individual hosts by
// destination /24; (c) the period of every cycle of the Slammer LCG.
//
// Reproduces both per-host hotspot classes of Section 4.2.3:
//   * Host A sits on a maximal (2^30) cycle and sprays widely, but with
//     block-to-block differences;
//   * Host B is trapped on a short cycle and hammers a tiny fixed set of
//     addresses — "appearing very much like a targeted denial of service
//     attack".
// Then prints the full cycle census for each effective increment (64
// cycles each) and the exact fixed points — the four addresses a
// worst-seeded Slammer instance would probe forever.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "prng/lcg_cycles.h"
#include "prng/spectral.h"
#include "prng/xoshiro.h"
#include "telescope/ims.h"
#include "worms/slammer.h"

using namespace hotspots;

namespace {

/// Inverse of odd `a` modulo 2^bits (Newton iteration).
std::uint32_t OddInverse(std::uint32_t a, int bits) {
  std::uint32_t x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - a * x;  // Converges mod 2^64 > 2^32.
  return bits == 32 ? x : x & ((1u << bits) - 1);
}

void ProfileHost(const char* name, int dll_version, std::uint32_t seed,
                 std::uint64_t probes) {
  const auto analyzer = worms::SlammerCycleAnalyzer(dll_version);
  const auto params = worms::SlammerLcgParams(dll_version);
  std::printf("  %s: seed 0x%08X, cycle period %llu\n", name, seed,
              static_cast<unsigned long long>(
                  analyzer.CycleLength(params.Step(seed))));

  auto scanner = worms::SlammerWorm::MakeFixedScanner(dll_version, seed);
  prng::Xoshiro256 rng{1};
  const auto& blocks = telescope::ImsBlocks();
  std::vector<std::uint64_t> hits(blocks.size(), 0);
  std::map<std::uint32_t, std::uint32_t> i_block_per24;
  const auto& i_block = blocks[8].block;  // I/17.
  for (std::uint64_t i = 0; i < probes; ++i) {
    const net::Ipv4 target = scanner->NextTarget(rng);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (blocks[b].block.Contains(target)) {
        ++hits[b];
        break;
      }
    }
    if (i_block.Contains(target)) ++i_block_per24[target.Slash24()];
  }
  std::printf("    per-block infection attempts:");
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::printf(" %s=%llu", blocks[b].label.c_str(),
                static_cast<unsigned long long>(hits[b]));
  }
  std::printf("\n    I/17 internals: %zu of 128 /24s hit", i_block_per24.size());
  if (!i_block_per24.empty()) {
    std::uint32_t max = 0;
    for (const auto& [s24, count] : i_block_per24) max = std::max(max, count);
    std::printf(", max %u attempts in one /24", max);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Figure 3",
               "per-host Slammer scanning bias and the LCG cycle census");

  // ---- (a, b): two individual infected hosts -------------------------
  bench::Section("(a, b) individual Slammer hosts");
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  const auto params = worms::SlammerLcgParams(1);
  prng::Xoshiro256 rng{0xF16u};
  std::uint32_t long_seed = 0;
  bool have_long = false;
  std::uint32_t short_seed = 0;
  bool have_short = false;
  while (!have_long || !have_short) {
    const std::uint32_t seed = rng.NextU32();
    const std::uint64_t length = analyzer.CycleLength(params.Step(seed));
    if (length == (1u << 30) && !have_long) {
      long_seed = seed;
      have_long = true;
    }
    if (length <= (1u << 16) && length >= 16 && !have_short) {
      short_seed = seed;
      have_short = true;
    }
  }
  const auto probes = static_cast<std::uint64_t>(20'000'000 * scale) + 100'000;
  ProfileHost("host A (maximal cycle)", 1, long_seed, probes);
  ProfileHost("host B (short cycle) ", 1, short_seed, probes);
  bench::PaperSays("host A reached I most, H some, D none; host B showed "
                   "high intra-block variance — individual hosts are heavily "
                   "biased, short cycles look like targeted DoS.");

  // ---- (c): cycle census ---------------------------------------------
  bench::Section("(c) cycle census per effective increment");
  for (int version = 0; version < 3; ++version) {
    const auto a = worms::SlammerCycleAnalyzer(version);
    const auto census = a.Census();
    std::printf("  b=0x%08X: %llu cycles —",
                worms::SlammerEffectiveIncrements()[
                    static_cast<std::size_t>(version)],
                static_cast<unsigned long long>(a.TotalCycles()));
    std::uint64_t shortest = ~0ull;
    std::uint64_t longest = 0;
    std::uint64_t period_one = 0;
    for (const auto& cls : census) {
      shortest = std::min(shortest, cls.length);
      longest = std::max(longest, cls.length);
      if (cls.length == 1) period_one += cls.num_cycles;
    }
    std::printf(" longest %llu, %llu fixed points\n",
                static_cast<unsigned long long>(longest),
                static_cast<unsigned long long>(period_one));
  }
  std::printf("  full census for b=0x8831FA24 (len x count):");
  for (const auto& cls : analyzer.Census()) {
    std::printf(" %llux%llu", static_cast<unsigned long long>(cls.length),
                static_cast<unsigned long long>(cls.num_cycles));
  }
  std::printf("\n");
  bench::PaperSays("64 cycles per b value; log plot shows many small cycles "
                   "and seven cycles having a period of only one.");
  bench::Measured("exactly 64 cycles per b value; the affine census gives "
                  "four period-one cycles per b (the paper's 'seven' counts "
                  "across b values / enumeration differences).");

  // 2-D spectral quality: the multiplier itself is not the problem.
  bench::Section("2-D spectral test of the Slammer/msvcrt multiplier");
  {
    const auto spectral = prng::SpectralTest2D(
        prng::LcgParams{prng::kMsvcMultiplier, 0, 32});
    std::printf("  a=214013 mod 2^32: nu2=%.1f, merit=%.3f "
                "(shortest lattice vector (%lld, %lld))\n",
                spectral.nu2, spectral.merit,
                static_cast<long long>(spectral.shortest_x),
                static_cast<long long>(spectral.shortest_y));
    bench::Measured("the lattice quality is unremarkable — Slammer's "
                    "hotspots come from the OR-bug increment and seeding, "
                    "not the multiplier. Flaws live in implementation "
                    "context, exactly the paper's algorithmic-factor "
                    "definition.");
  }

  // Fixed points, exactly: (a-1)x + b ≡ 0 (mod 2^32) with a-1 = 4·53503.
  bench::Section("exact fixed points (perpetual single-target DoS)");
  for (int version = 0; version < 3; ++version) {
    const std::uint32_t b =
        worms::SlammerEffectiveIncrements()[static_cast<std::size_t>(version)];
    const std::uint32_t inv = OddInverse(53503u, 30);
    // x ≡ -(b/4)·inv(53503) (mod 2^30); b is divisible by 4 for all three.
    const std::uint32_t x0 =
        (static_cast<std::uint32_t>(-(static_cast<std::int64_t>(b / 4))) *
         inv) &
        ((1u << 30) - 1);
    std::printf("  b=0x%08X:", b);
    for (std::uint32_t k = 0; k < 4; ++k) {
      const std::uint32_t x = x0 + (k << 30);
      std::printf(" %s", net::Ipv4{x}.ToString().c_str());
      // Sanity: really fixed.
      if (worms::SlammerLcgParams(version).Step(x) != x) {
        std::printf("(NOT-FIXED!)");
      }
    }
    std::printf("\n");
  }
  bench::DumpMetrics(metrics_out, "fig3_slammer_cycles");
  bench::DumpTimeline(timeline_out);
  return 0;
}
