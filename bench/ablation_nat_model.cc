// Ablation — how much does the NAT *site model* matter?
//
// DESIGN.md calls out one modelling decision behind Figure 5(c): NATed
// hosts live in a single shared 192.168/16 space (so the worm's same-/16
// arm lets the private epidemic grow — what the paper's simulation needs),
// versus the strict home-NAT model where every host is alone behind its own
// device and can never be infected after t=0.  This bench runs the same
// 192/8 sensor placement against both models — HOTSPOTS_TRIALS Monte-Carlo
// outbreaks each — and shows the Figure-5c result's sensitivity: with
// shared private space the 255 sensors light up almost immediately; with
// per-host sites only the handful of NATed *seed* infections leak, and
// detection collapses.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "telescope/ims.h"
#include "worms/codered2.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Ablation", "shared-site vs per-host-site NAT modelling");
  std::printf("  %d trials per site model\n", trials);

  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  const worms::CodeRed2Worm worm;
  for (const auto mode : {core::NatSiteMode::kSharedSite,
                          core::NatSiteMode::kPerHostSite}) {
    core::ScenarioBuilder builder;
    for (const auto& block : telescope::ImsBlocks()) {
      builder.Avoid(block.block);
    }
    core::ClusteredPopulationConfig config;
    config.total_hosts = static_cast<std::uint32_t>(40'000 * scale) + 1000;
    config.nonempty_slash16s = 800;
    config.slash8_clusters = 30;
    config.nat_fraction = 0.15;
    config.nat_site_mode = mode;
    config.seed = 0xAB1A;
    core::Scenario scenario = builder.BuildClustered(config);

    prng::Xoshiro256 rng{3};
    const auto sensors = core::PlaceSensorsAcross192(rng);
    core::MonteCarloStudyConfig mc;
    mc.trials = trials;
    mc.master_seed = 0xAB1A;
    mc.label = mode == core::NatSiteMode::kSharedSite ? "shared-site"
                                                      : "per-host-site";
    mc.study.engine.scan_rate = 10.0;
    mc.study.engine.end_time = 1200.0;
    mc.study.engine.stop_at_infected_fraction = 0.85;
    mc.study.alert_threshold = 5;
    mc.study.seed_infections = 25;
    const auto outcome =
        core::RunDetectionStudyMonteCarlo(scenario, worm, sensors, mc);
    total_probes += outcome.total_probes;
    overall.Merge(outcome.telemetry);

    std::vector<double> at20;
    for (const auto& trial : outcome.trials) {
      at20.push_back(trial.AlertedFractionWhenInfected(0.20));
    }
    const std::size_t total_sensors =
        outcome.trials.empty() ? 0 : outcome.trials.front().total_sensors;
    bench::Section(mode == core::NatSiteMode::kSharedSite
                       ? "shared 192.168/16 site (paper-faithful)"
                       : "per-host sites (strict home-NAT)");
    std::printf("  NATed hosts: %u; final infected %s%%; sensors alerted "
                "%s of %zu; alerted at 20%% infection: %.1f%%\n",
                scenario.natted_hosts,
                bench::MeanStd(outcome.infected_fraction, "%.1f", 100.0)
                    .c_str(),
                bench::MeanStd(outcome.alerted_sensors, "%.1f").c_str(),
                total_sensors, 100.0 * sim::Summarize(at20).mean);
  }

  bench::Measured(
      "the Figure-5c '255 sensors in 192/8 all alert' result depends on the "
      "private epidemic growing — i.e. on NATed hosts sharing reachable "
      "private space. Under strict per-host NATs, only seed infections ever "
      "scan from 192.168 space and the hotspot shrinks accordingly.");
  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "ablation_nat_model", &overall);
  bench::DumpTimeline(timeline_out);
  return 0;
}
