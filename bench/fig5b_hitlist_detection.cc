// Figure 5(b) — "Sensor detection rate with different hit-list sizes."
//
// Same outbreak as Figure 5(a), but now watched: one /24 darknet sensor is
// placed inside every /16 that contains at least one vulnerable host
// (4,481 sensors), each alerting after 5 worm payloads.  The paper's
// result: sensors outside the hit-list can never alert, so even a perfect,
// instantaneous quorum detector never fires — with the small lists under
// 1 % of sensors ever alert, and even the full list leaves most sensors
// silent while the population is being infected.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "telescope/alerting.h"
#include "telescope/ims.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Figure 5b", "sensor alert rate vs hit-list size");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.seed = 0xF16B;
  core::Scenario scenario = builder.BuildClustered(config);

  prng::Xoshiro256 placement_rng{0x5E45u};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, placement_rng);
  std::printf("population: %u hosts; sensors: %zu /24 darknets (one per "
              "populated /16), alert threshold 5 payloads\n",
              scenario.public_hosts, sensors.size());

  const int kListSizes[] = {10, 100, 1000,
                            static_cast<int>(scenario.slash16_clusters.size())};

  struct Row {
    int list_size;
    double coverage;
    core::DetectionOutcome outcome;
  };
  std::vector<Row> rows;
  for (const int size : kListSizes) {
    const auto selection = core::GreedyHitList(scenario, size);
    worms::HitListWorm worm{selection.prefixes};
    core::DetectionStudyConfig study;
    study.engine.scan_rate = 10.0;
    study.engine.end_time = 2500.0;
    study.engine.sample_interval = 25.0;
    study.engine.seed = 0xB5 + static_cast<std::uint64_t>(size);
    study.engine.stop_at_infected_fraction = 0.995 * selection.coverage;
    study.alert_threshold = 5;
    study.seed_infections = 25;
    rows.push_back(Row{size, selection.coverage,
                       core::RunDetectionStudy(scenario, worm, sensors,
                                               study)});
  }

  bench::Section("fraction of sensors alerting over time");
  std::printf("  %-8s", "t(s)");
  for (const Row& row : rows) std::printf(" list-%-6d", row.list_size);
  std::printf("\n");
  for (double t = 0; t <= 2500.0; t += 125.0) {
    std::printf("  %-8.0f", t);
    for (const Row& row : rows) {
      double fraction = 0.0;
      for (const auto& point : row.outcome.curve) {
        if (point.time > t) break;
        fraction = point.alerted_fraction;
      }
      std::printf(" %-10.4f", fraction);
    }
    std::printf("\n");
  }

  bench::Section("summary: blindness of the distributed detector");
  for (const Row& row : rows) {
    std::printf("  hit-list %4d: coverage %6.2f%%, final infected %6.2f%%, "
                "sensors alerted %5zu/%zu (%.2f%%); alerted when 90%% of "
                "covered hosts infected: %.2f%%\n",
                row.list_size, 100.0 * row.coverage,
                100.0 * row.outcome.run.FinalInfectedFraction(),
                row.outcome.alerted_sensors, row.outcome.total_sensors,
                100.0 * row.outcome.alerted_sensors /
                    static_cast<double>(row.outcome.total_sensors),
                100.0 * row.outcome.AlertedFractionWhenInfected(
                            0.9 * row.coverage));
    const auto quorum = telescope::QuorumDetectionTime(
        row.outcome.alert_times, row.outcome.total_sensors, 0.5);
    std::printf("    quorum detector (50%% of sensors): %s\n",
                quorum ? "fires" : "NEVER fires");
  }
  bench::PaperSays("even with no false positives and instantaneous sensor "
                   "communication, a quorum-based approach would likely "
                   "never alert; when >90%% of the vulnerable population is "
                   "infected, only slightly more than 20%% of detectors have "
                   "alerted.");
  return 0;
}
