// Figure 5(b) — "Sensor detection rate with different hit-list sizes."
//
// Same outbreak as Figure 5(a), but now watched: one /24 darknet sensor is
// placed inside every /16 that contains at least one vulnerable host
// (4,481 sensors), each alerting after 5 worm payloads.  The paper's
// result: sensors outside the hit-list can never alert, so even a perfect,
// instantaneous quorum detector never fires — with the small lists under
// 1 % of sensors ever alert, and even the full list leaves most sensors
// silent while the population is being infected.
//
// Statistics are Monte-Carlo: HOTSPOTS_TRIALS independent outbreaks per
// hit-list size (different seed placements and scan randomness), fanned
// out across HOTSPOTS_THREADS worker threads and averaged.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "telescope/alerting.h"
#include "telescope/ims.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Figure 5b", "sensor alert rate vs hit-list size");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.seed = 0xF16B;
  core::Scenario scenario = builder.BuildClustered(config);

  prng::Xoshiro256 placement_rng{0x5E45u};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, placement_rng);
  std::printf("population: %u hosts; sensors: %zu /24 darknets (one per "
              "populated /16), alert threshold 5 payloads; %d trials per "
              "hit-list size\n",
              scenario.public_hosts, sensors.size(), trials);

  const int kListSizes[] = {10, 100, 1000,
                            static_cast<int>(scenario.slash16_clusters.size())};

  struct Row {
    int list_size;
    double coverage;
    core::MonteCarloDetectionSummary mc;
  };
  std::vector<Row> rows;
  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  for (const int size : kListSizes) {
    const auto selection = core::GreedyHitList(scenario, size);
    worms::HitListWorm worm{selection.prefixes};
    core::MonteCarloStudyConfig mc;
    mc.trials = trials;
    mc.master_seed = 0xB5 + static_cast<std::uint64_t>(size);
    mc.label = "list-" + std::to_string(size);
    mc.study.engine.scan_rate = 10.0;
    mc.study.engine.end_time = 2500.0;
    mc.study.engine.sample_interval = 25.0;
    mc.study.engine.stop_at_infected_fraction = 0.995 * selection.coverage;
    mc.study.alert_threshold = 5;
    mc.study.seed_infections = 25;
    Row row{size, selection.coverage,
            core::RunDetectionStudyMonteCarlo(scenario, worm, sensors, mc)};
    total_probes += row.mc.total_probes;
    overall.Merge(row.mc.telemetry);
    rows.push_back(std::move(row));
  }

  bench::Section("mean fraction of sensors alerting over time");
  std::printf("  %-8s", "t(s)");
  for (const Row& row : rows) std::printf(" list-%-6d", row.list_size);
  std::printf("\n");
  for (double t = 0; t <= 2500.0; t += 125.0) {
    std::printf("  %-8.0f", t);
    for (const Row& row : rows) {
      std::printf(" %-10.4f", row.mc.MeanCurveAt(t).alerted_fraction);
    }
    std::printf("\n");
  }

  bench::Section("summary: blindness of the distributed detector "
                 "(mean±stddev across trials)");
  for (const Row& row : rows) {
    const std::size_t total_sensors =
        row.mc.trials.empty() ? 0 : row.mc.trials.front().total_sensors;
    // The alerted fraction at the moment 90% of covered hosts are infected,
    // averaged across trials.
    std::vector<double> alerted_at_90;
    for (const auto& trial : row.mc.trials) {
      alerted_at_90.push_back(
          trial.AlertedFractionWhenInfected(0.9 * row.coverage));
    }
    const auto at_90 = sim::Summarize(alerted_at_90);
    std::printf(
        "  hit-list %4d: coverage %6.2f%%, final infected %s%%, sensors "
        "alerted %s of %zu (%s%%); alerted when 90%% of covered hosts "
        "infected: %.2f%%\n",
        row.list_size, 100.0 * row.coverage,
        bench::MeanStd(row.mc.infected_fraction, "%.2f", 100.0).c_str(),
        bench::MeanStd(row.mc.alerted_sensors, "%.1f").c_str(), total_sensors,
        bench::MeanStd(row.mc.alerted_fraction, "%.2f", 100.0).c_str(),
        100.0 * at_90.mean);
    const int quorum_trials = row.mc.TrialsWithQuorum(0.5);
    std::printf("    quorum detector (50%% of sensors): fires in %d/%d "
                "trials\n",
                quorum_trials, trials);
  }
  bench::PaperSays("even with no false positives and instantaneous sensor "
                   "communication, a quorum-based approach would likely "
                   "never alert; when >90%% of the vulnerable population is "
                   "infected, only slightly more than 20%% of detectors have "
                   "alerted.");
  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "fig5b_hitlist_detection", &overall);
  bench::DumpTimeline(timeline_out);
  return 0;
}
