// Detector visibility under sensor outages (fault-injection study).
//
// The paper's detection result (Figure 5) assumes a perfectly available
// sensor fleet.  Real telescopes lose blocks: routes get withdrawn,
// collectors crash, policy drifts.  This bench quantifies what that costs
// a distributed quorum detector: the Figure-5b outbreak (full hit list,
// one /24 darknet sensor per populated /16) is re-run under staggered
// sensor outage schedules — every sensor goes dark once for
// down_fraction * horizon seconds at a schedule-seeded random time — and
// the quorum first-alert time is compared against the fault-free
// baseline.
//
// The v2 sweep adds the *correlated* arm: at each total down-time the
// uniform per-sensor stagger is paired against `groupoutages:8:f:h` —
// every sensor sharing a /8 goes dark in ONE common window, the
// shared-transit/shared-collector failure mode.  Total sensor-seconds of
// darkness are equal by construction, so any detection lag difference is
// pure correlation structure.  Because the paper's traffic is hotspotted,
// correlated darkness can black out an entire hot cluster at once —
// uniform darkness always leaves some sensor of a hot /8 up — so the
// correlated arm is expected to show a strictly larger first-alert lag.
// Each paired sweep appends a row to results/BENCH_outage.json.
//
// Outage faults must never touch the outbreak itself: they drop what
// sensors *record*, not what the worm *sends*, and every probabilistic
// fault draws from the schedule-private RNG stream.  The bench hard-gates
// this (exit 1): per-trial probe and infection totals must be
// bit-identical across every observation-only sweep point, because they
// all run the same engine seeds.  A custom --faults schedule that injects
// delivery faults or trial kills legitimately changes the outbreak and is
// exempt from the gate.
//
// Usage: outage_visibility [scale] [--metrics-out PATH] [--trace-out PATH]
//                          [--faults SPEC]
// With --faults, the default down-fraction sweep is replaced by the
// baseline plus the given `hotspots.faults.v2` schedule (see
// fault/schedule.h for the grammar).  HOTSPOTS_TRIALS sets the trial
// count (default 8).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "fault/schedule.h"
#include "obs/json_writer.h"
#include "telescope/alerting.h"
#include "telescope/ims.h"
#include "trace_capture.h"
#include "worms/hitlist.h"

using namespace hotspots;

namespace {

constexpr double kEndTime = 2500.0;
/// Outage windows are drawn inside [0, kOutageHorizon], strictly before
/// the end of the run, so every sensor is back up with time to re-alert.
/// The horizon is deliberately tight around the detection-critical epoch
/// (first alerts land near t≈75 s, the alert ramp is over by ~250 s): a
/// window can only reveal correlation structure if it overlaps the epoch
/// where detection is actually decided.  Per-sensor down-time is
/// fraction*horizon in BOTH arms regardless, so the pairing stays fair.
constexpr double kOutageHorizon = 250.0;
constexpr double kQuorumFraction = 0.75;

struct SweepPoint {
  std::string label;
  fault::FaultSchedule schedule;  ///< Ignored when `faulted` is false.
  bool faulted = false;
  /// Total down-time fraction (both arms), 0 for baseline/custom.
  double fraction = 0.0;
  /// True for the group-correlated arm (`groupoutages`), false for the
  /// uniform per-sensor stagger at the same fraction.
  bool correlated = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const std::string trace_out = bench::TraceOutArg(argc, argv);
  const std::string fault_spec = bench::FaultSpecArg(argc, argv);
  const double scale = bench::ScaleArg(argc, argv);
  // 8 trials by default: the correlated arm's first-alert lag is an
  // all-or-nothing event per trial (the hot /8's window either covers the
  // onset or it doesn't, ~43% at 30% down-time), so small trial counts
  // can miss it entirely.  ci.sh overrides down to 2 for its smoke.
  const int trials = bench::TrialsArg(8);
  fault::FaultSchedule custom_schedule;
  if (!fault_spec.empty()) {
    try {
      custom_schedule = fault::ParseFaultSpec(fault_spec);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "--faults: %s\n", error.what());
      return 2;
    }
  }
  bench::Title("Outage study", "quorum detection visibility under sensor "
                               "outages");

  // The Figure-5b world: clustered population, full greedy hit list, one
  // /24 darknet sensor inside every populated /16.
  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.seed = 0xF16B;
  core::Scenario scenario = builder.BuildClustered(config);

  prng::Xoshiro256 placement_rng{0x5E45u};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, placement_rng);
  const auto selection = core::GreedyHitList(
      scenario, static_cast<int>(scenario.slash16_clusters.size()));
  worms::HitListWorm worm{selection.prefixes};
  std::printf("population: %u hosts; sensors: %zu /24 darknets; full "
              "hit list (%.0f%% coverage); %d trials per sweep point\n",
              scenario.public_hosts, sensors.size(), 100.0 * selection.coverage,
              trials);

  std::vector<SweepPoint> sweep;
  sweep.push_back({"no-fault", {}, false});
  if (!fault_spec.empty()) {
    SweepPoint custom;
    custom.label = "custom";
    custom.schedule = std::move(custom_schedule);
    custom.faulted = true;
    sweep.push_back(std::move(custom));
  } else {
    for (const double fraction : {0.3, 0.6}) {
      char label[32];
      // Uniform arm: every sensor independently dark for fraction*horizon.
      SweepPoint uniform;
      std::snprintf(label, sizeof label, "unif-%.0f%%", 100.0 * fraction);
      uniform.label = label;
      uniform.schedule.staggered.down_fraction = fraction;
      uniform.schedule.staggered.horizon = kOutageHorizon;
      uniform.faulted = true;
      uniform.fraction = fraction;
      sweep.push_back(std::move(uniform));
      // Correlated arm: identical per-sensor down-time, but all sensors
      // in a /8 share one window (one draw per distinct /8).
      SweepPoint correlated;
      std::snprintf(label, sizeof label, "corr8-%.0f%%", 100.0 * fraction);
      correlated.label = label;
      correlated.schedule.group_staggered.prefix_bits = 8;
      correlated.schedule.group_staggered.down_fraction = fraction;
      correlated.schedule.group_staggered.horizon = kOutageHorizon;
      correlated.faulted = true;
      correlated.fraction = fraction;
      correlated.correlated = true;
      sweep.push_back(std::move(correlated));
    }
  }

  struct Row {
    const SweepPoint* point;
    core::MonteCarloDetectionSummary mc;
    sim::SummaryStats quorum_time;
    double mean_outage_missed = 0.0;
  };
  std::vector<Row> rows;
  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  for (const SweepPoint& point : sweep) {
    core::MonteCarloStudyConfig mc;
    mc.trials = trials;
    // The SAME master seed at every sweep point: per-trial engine seeds —
    // and therefore the outbreaks themselves — are identical, and only
    // what the sensors record differs.
    mc.master_seed = 0xFA17;
    mc.label = point.label;
    mc.study.engine.scan_rate = 20.0;
    mc.study.engine.end_time = kEndTime;
    mc.study.engine.sample_interval = 25.0;
    // Observational: the worm keeps scanning after saturation so sensors
    // keep accumulating payloads (outage recovery needs traffic to see).
    mc.study.engine.stop_at_infected_fraction = 2.0;
    mc.study.alert_threshold = 5;
    mc.study.seed_infections = 25;
    if (point.faulted) mc.study.faults = &point.schedule;

    Row row;
    row.point = &point;
    row.mc = core::RunDetectionStudyMonteCarlo(scenario, worm, sensors, mc);
    std::vector<double> quorum_times;
    for (const auto& trial : row.mc.trials) {
      const auto fired = telescope::QuorumDetectionTime(
          trial.alert_times, trial.total_sensors, kQuorumFraction);
      quorum_times.push_back(fired ? *fired
                                   : std::numeric_limits<double>::quiet_NaN());
      row.mean_outage_missed += static_cast<double>(trial.outage_missed_probes);
    }
    row.quorum_time = sim::Summarize(quorum_times);
    row.mean_outage_missed /= static_cast<double>(row.mc.trials.size());
    total_probes += row.mc.total_probes;
    overall.Merge(row.mc.telemetry);
    rows.push_back(std::move(row));
  }

  // -- Hard gate: observation-only faults never perturb the outbreak -----
  // Outage schedules drop what sensors *record*, so the outbreak must be
  // bit-identical to the baseline.  Delivery faults (loss, duplication,
  // ACL drift) and trial kills *legitimately* change what happens — a
  // custom --faults schedule using them is exempt from the gate.
  const Row& baseline = rows.front();
  std::size_t gated_points = 0;
  for (const Row& row : rows) {
    if (row.point->faulted && (row.point->schedule.HasDeliveryFaults() ||
                               row.point->schedule.trials.failure_rate > 0.0)) {
      std::printf("\n(sweep \"%s\" injects delivery/trial faults — exempt "
                  "from the outbreak-invariance gate)\n",
                  row.point->label.c_str());
      continue;
    }
    ++gated_points;
    for (std::size_t t = 0; t < row.mc.trials.size(); ++t) {
      const auto& got = row.mc.trials[t].run;
      const auto& want = baseline.mc.trials[t].run;
      if (got.total_probes != want.total_probes ||
          got.FinalInfectedFraction() != want.FinalInfectedFraction()) {
        std::fprintf(stderr,
                     "FAIL: sweep \"%s\" trial %zu perturbed the outbreak "
                     "(probes %llu vs %llu, infected %.9f vs %.9f) — the "
                     "fault layer must only affect what sensors record\n",
                     row.point->label.c_str(), t,
                     static_cast<unsigned long long>(got.total_probes),
                     static_cast<unsigned long long>(want.total_probes),
                     got.FinalInfectedFraction(), want.FinalInfectedFraction());
        return 1;
      }
    }
  }
  std::printf("\noutbreak invariance: OK — per-trial probe and infection "
              "totals bit-identical across %zu of %zu sweep points\n",
              gated_points, rows.size());

  bench::Section("quorum detection under outages");
  std::printf("  %-10s %-10s %-20s %-20s %-12s %s\n", "sweep", "down-time",
              "first alert (s)", "quorum alert (s)", "quorum lag",
              "missed probes/trial");
  const double base_quorum = baseline.quorum_time.mean;
  const double base_first = baseline.mc.first_alert_time.mean;
  for (const Row& row : rows) {
    const double fraction =
        row.point->fraction > 0.0
            ? row.point->fraction
            : (row.point->faulted ? row.point->schedule.staggered.down_fraction
                                  : 0.0);
    const double lag = row.quorum_time.mean - base_quorum;
    char down_time[16];
    std::snprintf(down_time, sizeof down_time, "%.0f%%", 100.0 * fraction);
    std::printf("  %-10s %-10s %-20s %-20s %+-12.1f %.0f\n",
                row.point->label.c_str(), down_time,
                bench::MeanStd(row.mc.first_alert_time, "%.1f").c_str(),
                bench::MeanStd(row.quorum_time, "%.1f").c_str(),
                row.point->faulted ? lag : 0.0, row.mean_outage_missed);
    if (row.point->faulted && row.mc.trials.size() > 0 &&
        row.quorum_time.count == 0) {
      std::printf("    (quorum never fired under this schedule)\n");
    }
  }

  // -- Correlated-vs-uniform comparison + results/BENCH_outage.json ------
  // Only the default sweep has matched arms; a custom --faults run skips
  // this block entirely.
  if (fault_spec.empty()) {
    for (const double fraction : {0.3, 0.6}) {
      const Row* uniform = nullptr;
      const Row* correlated = nullptr;
      for (const Row& row : rows) {
        if (row.point->fraction != fraction) continue;
        (row.point->correlated ? correlated : uniform) = &row;
      }
      if (uniform == nullptr || correlated == nullptr) continue;
      const double unif_first_lag = uniform->mc.first_alert_time.mean - base_first;
      const double corr_first_lag =
          correlated->mc.first_alert_time.mean - base_first;
      const double unif_quorum_lag = uniform->quorum_time.mean - base_quorum;
      const double corr_quorum_lag = correlated->quorum_time.mean - base_quorum;
      std::printf("\n  at %.0f%% down-time: first-alert lag %+.1f s uniform "
                  "vs %+.1f s correlated (/8) — correlated %s uniform\n",
                  100.0 * fraction, unif_first_lag, corr_first_lag,
                  corr_first_lag > unif_first_lag ? "exceeds"
                                                  : "DOES NOT exceed");
      obs::JsonWriter writer;
      writer.BeginObject();
      writer.KV("bench", "outage_visibility");
      writer.Key("down_fraction").FixedValue(fraction, 2);
      writer.Key("horizon_seconds").FixedValue(kOutageHorizon, 0);
      writer.KV("trials", static_cast<std::int64_t>(trials));
      writer.Key("scale").FixedValue(scale, 4);
      writer.KV("correlated_group_prefix_bits", std::int64_t{8});
      writer.Key("first_alert_baseline_s").FixedValue(base_first, 3);
      writer.Key("first_alert_uniform_s")
          .FixedValue(uniform->mc.first_alert_time.mean, 3);
      writer.Key("first_alert_correlated_s")
          .FixedValue(correlated->mc.first_alert_time.mean, 3);
      writer.Key("first_alert_lag_uniform_s").FixedValue(unif_first_lag, 3);
      writer.Key("first_alert_lag_correlated_s").FixedValue(corr_first_lag, 3);
      writer.Key("quorum_baseline_s").FixedValue(base_quorum, 3);
      writer.Key("quorum_uniform_s").FixedValue(uniform->quorum_time.mean, 3);
      writer.Key("quorum_correlated_s")
          .FixedValue(correlated->quorum_time.mean, 3);
      writer.Key("quorum_lag_uniform_s").FixedValue(unif_quorum_lag, 3);
      writer.Key("quorum_lag_correlated_s").FixedValue(corr_quorum_lag, 3);
      writer.KV("correlated_exceeds_uniform",
                corr_first_lag > unif_first_lag);
      writer.EndObject();
      bench::AppendJsonEntry("results/BENCH_outage.json", writer.str(),
                             "outage_visibility");
    }
  }
  bench::Measured("at equal total down-time, /8-correlated darkness delays "
                  "the first alert more than uniform darkness: hotspot "
                  "traffic concentrates in a few /8s, and a correlated "
                  "outage can black out a whole hot cluster at once — "
                  "availability faults degrade *visibility*, not the threat.");

  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "outage_visibility", &overall);
  bench::DumpTimeline(timeline_out);
  bench::CaptureObservationalTrace(trace_out, "outage_visibility", worm,
                                   {.scale = scale});
  return 0;
}
