// Detector visibility under sensor outages (fault-injection study).
//
// The paper's detection result (Figure 5) assumes a perfectly available
// sensor fleet.  Real telescopes lose blocks: routes get withdrawn,
// collectors crash, policy drifts.  This bench quantifies what that costs
// a distributed quorum detector: the Figure-5b outbreak (full hit list,
// one /24 darknet sensor per populated /16) is re-run under staggered
// sensor outage schedules — every sensor goes dark once for
// down_fraction * horizon seconds at a schedule-seeded random time — and
// the quorum first-alert time is compared against the fault-free
// baseline.
//
// Outage faults must never touch the outbreak itself: they drop what
// sensors *record*, not what the worm *sends*, and every probabilistic
// fault draws from the schedule-private RNG stream.  The bench hard-gates
// this (exit 1): per-trial probe and infection totals must be
// bit-identical across every observation-only sweep point, because they
// all run the same engine seeds.  A custom --faults schedule that injects
// delivery faults or trial kills legitimately changes the outbreak and is
// exempt from the gate.
//
// Usage: outage_visibility [scale] [--metrics-out PATH] [--trace-out PATH]
//                          [--faults SPEC]
// With --faults, the default down-fraction sweep is replaced by the
// baseline plus the given `hotspots.faults.v1` schedule (see
// fault/schedule.h for the grammar).  HOTSPOTS_TRIALS sets the trial
// count (default 4).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "fault/schedule.h"
#include "telescope/alerting.h"
#include "telescope/ims.h"
#include "trace_capture.h"
#include "worms/hitlist.h"

using namespace hotspots;

namespace {

constexpr double kEndTime = 2500.0;
/// Outage windows are drawn inside [0, kOutageHorizon], strictly before
/// the end of the run, so every sensor is back up with time to re-alert.
constexpr double kOutageHorizon = 2000.0;
constexpr double kQuorumFraction = 0.75;

struct SweepPoint {
  std::string label;
  fault::FaultSchedule schedule;  ///< Ignored when `faulted` is false.
  bool faulted = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const std::string trace_out = bench::TraceOutArg(argc, argv);
  const std::string fault_spec = bench::FaultSpecArg(argc, argv);
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  fault::FaultSchedule custom_schedule;
  if (!fault_spec.empty()) {
    try {
      custom_schedule = fault::ParseFaultSpec(fault_spec);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "--faults: %s\n", error.what());
      return 2;
    }
  }
  bench::Title("Outage study", "quorum detection visibility under sensor "
                               "outages");

  // The Figure-5b world: clustered population, full greedy hit list, one
  // /24 darknet sensor inside every populated /16.
  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.seed = 0xF16B;
  core::Scenario scenario = builder.BuildClustered(config);

  prng::Xoshiro256 placement_rng{0x5E45u};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, placement_rng);
  const auto selection = core::GreedyHitList(
      scenario, static_cast<int>(scenario.slash16_clusters.size()));
  worms::HitListWorm worm{selection.prefixes};
  std::printf("population: %u hosts; sensors: %zu /24 darknets; full "
              "hit list (%.0f%% coverage); %d trials per sweep point\n",
              scenario.public_hosts, sensors.size(), 100.0 * selection.coverage,
              trials);

  std::vector<SweepPoint> sweep;
  sweep.push_back({"no-fault", {}, false});
  if (!fault_spec.empty()) {
    SweepPoint custom;
    custom.label = "custom";
    custom.schedule = std::move(custom_schedule);
    custom.faulted = true;
    sweep.push_back(std::move(custom));
  } else {
    for (const double fraction : {0.3, 0.6}) {
      SweepPoint point;
      char label[32];
      std::snprintf(label, sizeof label, "down-%.0f%%", 100.0 * fraction);
      point.label = label;
      point.schedule.staggered.down_fraction = fraction;
      point.schedule.staggered.horizon = kOutageHorizon;
      point.faulted = true;
      sweep.push_back(std::move(point));
    }
  }

  struct Row {
    const SweepPoint* point;
    core::MonteCarloDetectionSummary mc;
    sim::SummaryStats quorum_time;
    double mean_outage_missed = 0.0;
  };
  std::vector<Row> rows;
  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  for (const SweepPoint& point : sweep) {
    core::MonteCarloStudyConfig mc;
    mc.trials = trials;
    // The SAME master seed at every sweep point: per-trial engine seeds —
    // and therefore the outbreaks themselves — are identical, and only
    // what the sensors record differs.
    mc.master_seed = 0xFA17;
    mc.label = point.label;
    mc.study.engine.scan_rate = 20.0;
    mc.study.engine.end_time = kEndTime;
    mc.study.engine.sample_interval = 25.0;
    // Observational: the worm keeps scanning after saturation so sensors
    // keep accumulating payloads (outage recovery needs traffic to see).
    mc.study.engine.stop_at_infected_fraction = 2.0;
    mc.study.alert_threshold = 5;
    mc.study.seed_infections = 25;
    if (point.faulted) mc.study.faults = &point.schedule;

    Row row;
    row.point = &point;
    row.mc = core::RunDetectionStudyMonteCarlo(scenario, worm, sensors, mc);
    std::vector<double> quorum_times;
    for (const auto& trial : row.mc.trials) {
      const auto fired = telescope::QuorumDetectionTime(
          trial.alert_times, trial.total_sensors, kQuorumFraction);
      quorum_times.push_back(fired ? *fired
                                   : std::numeric_limits<double>::quiet_NaN());
      row.mean_outage_missed += static_cast<double>(trial.outage_missed_probes);
    }
    row.quorum_time = sim::Summarize(quorum_times);
    row.mean_outage_missed /= static_cast<double>(row.mc.trials.size());
    total_probes += row.mc.total_probes;
    overall.Merge(row.mc.telemetry);
    rows.push_back(std::move(row));
  }

  // -- Hard gate: observation-only faults never perturb the outbreak -----
  // Outage schedules drop what sensors *record*, so the outbreak must be
  // bit-identical to the baseline.  Delivery faults (loss, duplication,
  // ACL drift) and trial kills *legitimately* change what happens — a
  // custom --faults schedule using them is exempt from the gate.
  const Row& baseline = rows.front();
  std::size_t gated_points = 0;
  for (const Row& row : rows) {
    if (row.point->faulted && (row.point->schedule.HasDeliveryFaults() ||
                               row.point->schedule.trials.failure_rate > 0.0)) {
      std::printf("\n(sweep \"%s\" injects delivery/trial faults — exempt "
                  "from the outbreak-invariance gate)\n",
                  row.point->label.c_str());
      continue;
    }
    ++gated_points;
    for (std::size_t t = 0; t < row.mc.trials.size(); ++t) {
      const auto& got = row.mc.trials[t].run;
      const auto& want = baseline.mc.trials[t].run;
      if (got.total_probes != want.total_probes ||
          got.FinalInfectedFraction() != want.FinalInfectedFraction()) {
        std::fprintf(stderr,
                     "FAIL: sweep \"%s\" trial %zu perturbed the outbreak "
                     "(probes %llu vs %llu, infected %.9f vs %.9f) — the "
                     "fault layer must only affect what sensors record\n",
                     row.point->label.c_str(), t,
                     static_cast<unsigned long long>(got.total_probes),
                     static_cast<unsigned long long>(want.total_probes),
                     got.FinalInfectedFraction(), want.FinalInfectedFraction());
        return 1;
      }
    }
  }
  std::printf("\noutbreak invariance: OK — per-trial probe and infection "
              "totals bit-identical across %zu of %zu sweep points\n",
              gated_points, rows.size());

  bench::Section("quorum detection under outages");
  std::printf("  %-10s %-12s %-22s %-14s %s\n", "sweep", "down-time",
              "quorum first-alert (s)", "lag vs base", "missed probes/trial");
  const double base_quorum = baseline.quorum_time.mean;
  for (const Row& row : rows) {
    const double fraction =
        row.point->faulted ? row.point->schedule.staggered.down_fraction : 0.0;
    const double lag = row.quorum_time.mean - base_quorum;
    char down_time[16];
    std::snprintf(down_time, sizeof down_time, "%.0f%%", 100.0 * fraction);
    std::printf("  %-10s %-12s %-22s %+-14.1f %.0f\n",
                row.point->label.c_str(), down_time,
                bench::MeanStd(row.quorum_time, "%.1f").c_str(),
                row.point->faulted ? lag : 0.0, row.mean_outage_missed);
    if (row.point->faulted && row.mc.trials.size() > 0 &&
        row.quorum_time.count == 0) {
      std::printf("    (quorum never fired under this schedule)\n");
    }
  }
  bench::Measured("a sensor fleet losing 30%%+ of its sensor-time delays the "
                  "%.0f%%-quorum first alert without changing the outbreak — "
                  "availability faults degrade *visibility*, not the threat.",
                  100.0 * kQuorumFraction);

  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "outage_visibility", &overall);
  bench::DumpTimeline(timeline_out);
  bench::CaptureObservationalTrace(trace_out, "outage_visibility", worm,
                                   {.scale = scale});
  return 0;
}
