// Ablation — time-stepped engine step size.
//
// DESIGN.md's engine choice: a time-stepped loop with Δt = 1/scan_rate (one
// probe per infected host per step) instead of an event queue.  This bench
// shows the epidemic curve is insensitive to the step size (Δt = 0.05 /
// 0.1 / 0.2 s at 10 probes/s, i.e. 0.5 / 1 / 2 probes of credit per step)
// while wall-clock cost tracks the probe count, justifying the default.
// Milestones are means over HOTSPOTS_TRIALS independent outbreaks; trial i
// uses the same derived seed at every step size, so the comparison isolates
// Δt.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "sim/study.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Ablation", "engine step size vs epidemic dynamics");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(30'000 * scale) + 500;
  config.nonempty_slash16s = 400;
  config.slash8_clusters = 20;
  config.seed = 0xD7;
  core::Scenario scenario = builder.BuildClustered(config);
  const auto selection = core::GreedyHitList(scenario, 50);
  worms::HitListWorm worm{selection.prefixes};
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};

  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  std::printf("  %d trials per step size\n", trials);
  std::printf("  %-8s %-14s %-14s %-14s %s\n", "dt(s)", "t(50% inf)",
              "t(90% inf)", "probes", "wall(s)");
  for (const double dt : {0.05, 0.1, 0.2}) {
    sim::StudyOptions options;
    options.master_seed = 0xD7D7;
    char label[32];
    std::snprintf(label, sizeof label, "dt-%.2f", dt);
    options.label = label;
    auto study = sim::RunStudy(
        options, trials, [&](int /*trial*/, std::uint64_t seed) {
          sim::Population population = scenario.population;
          sim::EngineConfig engine_config;
          engine_config.scan_rate = 10.0;
          engine_config.dt = dt;
          engine_config.end_time = 2000.0;
          engine_config.stop_at_infected_fraction = 0.95 * selection.coverage;
          engine_config.seed = seed;
          sim::Engine engine{population, worm, reachability, nullptr,
                             engine_config};
          engine.SeedRandomInfections(25);
          return engine.Run();
        });

    std::vector<double> t50s;
    std::vector<double> t90s;
    std::vector<double> probes;
    for (const sim::RunResult& run : study.trials) {
      total_probes += run.total_probes;
      // Milestones are against the covered slice, as in the serial bench.
      t50s.push_back(
          sim::TimeToInfectedFraction(run, 0.5 * selection.coverage));
      t90s.push_back(
          sim::TimeToInfectedFraction(run, 0.9 * selection.coverage));
      probes.push_back(static_cast<double>(run.total_probes));
    }
    std::printf("  %-8.2f %-14s %-14s %-14s %.2f\n", dt,
                bench::MeanStd(sim::Summarize(t50s), "%.0f").c_str(),
                bench::MeanStd(sim::Summarize(t90s), "%.0f").c_str(),
                bench::MeanStd(sim::Summarize(probes), "%.0f").c_str(),
                study.telemetry.wall_seconds);
    overall.Merge(study.telemetry);
  }
  bench::Measured("epidemic milestones (50%% / 90%% of covered hosts) agree "
                  "across step sizes; the default dt = 1/scan_rate is the "
                  "cheapest per simulated second.");
  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "ablation_engine_dt", &overall);
  bench::DumpTimeline(timeline_out);
  return 0;
}
