// Ablation — time-stepped engine step size.
//
// DESIGN.md's engine choice: a time-stepped loop with Δt = 1/scan_rate (one
// probe per infected host per step) instead of an event queue.  This bench
// shows the epidemic curve is insensitive to the step size (Δt = 0.05 /
// 0.1 / 0.2 s at 10 probes/s, i.e. 0.5 / 1 / 2 probes of credit per step)
// while wall-clock cost tracks the probe count, justifying the default.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Ablation", "engine step size vs epidemic dynamics");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(30'000 * scale) + 500;
  config.nonempty_slash16s = 400;
  config.slash8_clusters = 20;
  config.seed = 0xD7;
  core::Scenario scenario = builder.BuildClustered(config);
  const auto selection = core::GreedyHitList(scenario, 50);
  worms::HitListWorm worm{selection.prefixes};
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};

  std::printf("  %-8s %-14s %-14s %-14s %s\n", "dt(s)", "t(50% inf)",
              "t(90% inf)", "probes", "wall(ms)");
  for (const double dt : {0.05, 0.1, 0.2}) {
    scenario.population.ResetAllToVulnerable();
    sim::EngineConfig engine_config;
    engine_config.scan_rate = 10.0;
    engine_config.dt = dt;
    engine_config.end_time = 2000.0;
    engine_config.stop_at_infected_fraction = 0.95 * selection.coverage;
    engine_config.seed = 0xD7D7;
    sim::Engine engine{scenario.population, worm, reachability, nullptr,
                       engine_config};
    engine.SeedRandomInfections(25);
    const auto start = std::chrono::steady_clock::now();
    const sim::RunResult result = engine.Run();
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    double t50 = -1;
    double t90 = -1;
    const double eligible =
        static_cast<double>(result.eligible_population) * selection.coverage;
    for (const auto& point : result.series) {
      if (t50 < 0 && point.infected >= 0.5 * eligible) t50 = point.time;
      if (t90 < 0 && point.infected >= 0.9 * eligible) t90 = point.time;
    }
    std::printf("  %-8.2f %-14.0f %-14.0f %-14llu %lld\n", dt, t50, t90,
                static_cast<unsigned long long>(result.total_probes),
                static_cast<long long>(wall));
  }
  bench::Measured("epidemic milestones (50%% / 90%% of covered hosts) agree "
                  "across step sizes; the default dt = 1/scan_rate is the "
                  "cheapest per simulated second.");
  return 0;
}
