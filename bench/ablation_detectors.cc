// Ablation — three detection architectures against one hotspot worm.
//
// Section 5's argument, end to end: release a bot-style hit-list worm on
// the clustered population and race three detectors —
//   1. GLOBAL QUORUM over a distributed darknet fleet (one /24 sensor per
//      populated /16, alert @ 5 payloads, quorum 25% / 50%): the paper's
//      strawman, starved by the hotspot;
//   2. GLOBAL CONTENT PREVALENCE (EarlyBird/Autograph-style [12, 24]) over
//      the *aggregated* observations of the same fleet, and per-sensor —
//      globally it fires, but the per-sensor view is wildly inconsistent
//      ("alerts ... can be highly inaccurate in the face of hotspots");
//   3. LOCAL TRW ([11]) at the gateway of a targeted network, watching
//      outbound connection successes/failures: flags infected hosts within
//      a handful of probes.
#include <cstdio>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "detect/prevalence.h"
#include "detect/trw.h"
#include "sim/engine.h"
#include "telescope/alerting.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

using namespace hotspots;

namespace {

/// Observer feeding all three detector families at once.
class DetectorRace final : public sim::ProbeObserver {
 public:
  DetectorRace(const core::Scenario* scenario,
               telescope::Telescope* fleet,
               const net::Prefix& monitored_org)
      : scenario_(scenario), fleet_(fleet), monitored_org_(monitored_org) {
    detect::PrevalenceConfig global;
    global.prevalence_threshold = 1000;
    global.min_sources = 50;
    global.min_destinations = 500;
    global_prevalence_ = detect::ContentPrevalenceDetector{global};
  }

  void OnProbe(const sim::ProbeEvent& event) override {
    if (event.delivery != topology::Delivery::kDelivered) return;
    // Darknet fleet (threshold alerting) — only probes into sensor space.
    fleet_->Observe(event.time, event.src_address, event.dst);
    // Global prevalence aggregator sees what any fleet sensor saw.
    // (Content id 1 = this worm's payload.)
    if (InFleetSpace(event.dst)) {
      if (global_prevalence_.Observe(event.time, 1, event.src_address,
                                     event.dst) &&
          !global_prevalence_time_) {
        global_prevalence_time_ = event.time;
      }
    }
    // Local TRW gateway: watches every outbound probe of hosts inside the
    // monitored org; "success" = the probe reached a live host.
    if (monitored_org_.Contains(event.src_address)) {
      const bool success =
          scenario_->population.FindPublic(event.dst) != sim::kInvalidHost;
      trw_.Observe(event.time, event.src_address, success);
      if (!first_trw_flag_ && trw_.flagged_scanners() > 0) {
        first_trw_flag_ = event.time;
      }
    }
  }

  [[nodiscard]] bool InFleetSpace(net::Ipv4 dst) const {
    // The fleet's sensors are exactly the telescope's blocks; reuse its
    // index through a cheap containment probe.
    return fleet_checker_ != nullptr && fleet_checker_->Contains(dst);
  }

  void SetFleetChecker(const net::IntervalSet* checker) {
    fleet_checker_ = checker;
  }

  const core::Scenario* scenario_;
  telescope::Telescope* fleet_;
  net::Prefix monitored_org_;
  const net::IntervalSet* fleet_checker_ = nullptr;
  detect::ContentPrevalenceDetector global_prevalence_{};
  std::optional<double> global_prevalence_time_;
  detect::TrwDetector trw_;
  std::optional<double> first_trw_flag_;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Ablation", "global quorum vs content prevalence vs local TRW");

  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(60'000 * scale) + 1000;
  config.nonempty_slash16s = 900;
  config.slash8_clusters = 35;
  config.seed = 0xDE7;
  core::Scenario scenario = builder.BuildClustered(config);

  const auto selection = core::GreedyHitList(scenario, 60);
  worms::HitListWorm worm{selection.prefixes};
  std::printf("threat: %zu-/16 hit-list covering %.1f%% of %u hosts\n",
              selection.prefixes.size(), 100.0 * selection.coverage,
              scenario.public_hosts);

  prng::Xoshiro256 rng{17};
  const auto sensor_blocks = core::PlaceSensorPerCluster16(scenario, rng);
  telescope::Telescope fleet = core::MakeAlertingTelescope(sensor_blocks, 5);
  net::IntervalSet fleet_space;
  for (const auto& block : sensor_blocks) fleet_space.Add(block);
  fleet_space.Build();

  // Local gateway: the densest targeted /16 (an academic-network stand-in).
  const net::Prefix monitored = selection.prefixes.front();

  DetectorRace race{&scenario, &fleet, monitored};
  race.SetFleetChecker(&fleet_space);

  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  sim::EngineConfig engine_config;
  engine_config.scan_rate = 10.0;
  engine_config.end_time = 900.0;
  engine_config.stop_at_infected_fraction = 0.95 * selection.coverage;
  engine_config.seed = 0xDE7DE7;
  sim::Engine engine{scenario.population, worm, reachability, nullptr,
                     engine_config};
  engine.SeedRandomInfections(25);
  const sim::RunResult result = engine.Run(race);

  bench::Section("outcome");
  std::printf("  outbreak: %.1f%% of population infected by t=%.0fs\n",
              100.0 * result.FinalInfectedFraction(), result.end_time);

  const auto alert_times = fleet.AlertTimes();
  for (const double quorum : {0.25, 0.50}) {
    const auto fired = telescope::QuorumDetectionTime(alert_times,
                                                      fleet.size(), quorum);
    std::printf("  global quorum %2.0f%% over %zu darknets: %s\n",
                100 * quorum, fleet.size(),
                fired ? ("fired at t=" + std::to_string(*fired) + "s").c_str()
                      : "NEVER fired");
  }
  std::printf("  global content prevalence (aggregated fleet): %s\n",
              race.global_prevalence_time_
                  ? ("signature at t=" +
                     std::to_string(*race.global_prevalence_time_) + "s")
                        .c_str()
                  : "never crossed thresholds");
  std::printf("  per-sensor payload counts are wildly inconsistent: %zu of "
              "%zu sensors alerted at all\n",
              fleet.AlertedCount(), fleet.size());
  if (race.first_trw_flag_) {
    std::printf("  local TRW gateway at %s: first infected host flagged at "
                "t=%.1fs (%zu scanners total)\n",
                monitored.ToString().c_str(), *race.first_trw_flag_,
                race.trw_.flagged_scanners());
  } else {
    std::printf("  local TRW gateway at %s: no scanner flagged\n",
                monitored.ToString().c_str());
  }
  bench::Measured(
      "the hotspot starves the distributed quorum; the aggregated "
      "prevalence detector eventually assembles a signature (hotspots make "
      "its per-vantage view inconsistent, not its global sum); the local "
      "TRW gateway names the infected machine within seconds of its first "
      "scans — the paper's closing recommendation, quantified.");
  return 0;
}
