// Ablation — three detection architectures against one hotspot worm.
//
// Section 5's argument, end to end: release a bot-style hit-list worm on
// the clustered population and race three detectors —
//   1. GLOBAL QUORUM over a distributed darknet fleet (one /24 sensor per
//      populated /16, alert @ 5 payloads, quorum 25% / 50%): the paper's
//      strawman, starved by the hotspot;
//   2. GLOBAL CONTENT PREVALENCE (EarlyBird/Autograph-style [12, 24]) over
//      the *aggregated* observations of the same fleet, and per-sensor —
//      globally it fires, but the per-sensor view is wildly inconsistent
//      ("alerts ... can be highly inaccurate in the face of hotspots");
//   3. LOCAL TRW ([11]) at the gateway of a targeted network, watching
//      outbound connection successes/failures: flags infected hosts within
//      a handful of probes.
// The race is repeated over HOTSPOTS_TRIALS independent outbreaks (each
// trial owns its population, fleet and detectors) and the verdicts are
// aggregated.
#include <cstdio>
#include <limits>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "detect/prevalence.h"
#include "detect/trw.h"
#include "sim/engine.h"
#include "sim/study.h"
#include "telescope/alerting.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

using namespace hotspots;

namespace {

/// Observer feeding all three detector families at once.
class DetectorRace final : public sim::ProbeObserver {
 public:
  DetectorRace(const core::Scenario* scenario,
               telescope::Telescope* fleet,
               const net::Prefix& monitored_org)
      : scenario_(scenario), fleet_(fleet), monitored_org_(monitored_org) {
    detect::PrevalenceConfig global;
    global.prevalence_threshold = 1000;
    global.min_sources = 50;
    global.min_destinations = 500;
    global_prevalence_ = detect::ContentPrevalenceDetector{global};
  }

  void OnProbe(const sim::ProbeEvent& event) override {
    if (event.delivery != topology::Delivery::kDelivered) return;
    // Darknet fleet (threshold alerting) — only probes into sensor space.
    fleet_->Observe(event.time, event.src_address, event.dst);
    // Global prevalence aggregator sees what any fleet sensor saw.
    // (Content id 1 = this worm's payload.)
    if (InFleetSpace(event.dst)) {
      if (global_prevalence_.Observe(event.time, 1, event.src_address,
                                     event.dst) &&
          !global_prevalence_time_) {
        global_prevalence_time_ = event.time;
      }
    }
    // Local TRW gateway: watches every outbound probe of hosts inside the
    // monitored org; "success" = the probe reached a live host.
    if (monitored_org_.Contains(event.src_address)) {
      const bool success =
          scenario_->population.FindPublic(event.dst) != sim::kInvalidHost;
      trw_.Observe(event.time, event.src_address, success);
      if (!first_trw_flag_ && trw_.flagged_scanners() > 0) {
        first_trw_flag_ = event.time;
      }
    }
  }

  [[nodiscard]] bool InFleetSpace(net::Ipv4 dst) const {
    // The fleet's sensors are exactly the telescope's blocks; reuse its
    // index through a cheap containment probe.
    return fleet_checker_ != nullptr && fleet_checker_->Contains(dst);
  }

  void SetFleetChecker(const net::IntervalSet* checker) {
    fleet_checker_ = checker;
  }

  const core::Scenario* scenario_;
  telescope::Telescope* fleet_;
  net::Prefix monitored_org_;
  const net::IntervalSet* fleet_checker_ = nullptr;
  detect::ContentPrevalenceDetector global_prevalence_{};
  std::optional<double> global_prevalence_time_;
  detect::TrwDetector trw_;
  std::optional<double> first_trw_flag_;
};

/// Verdicts of one trial of the three-way race.
struct RaceResult {
  std::uint64_t probes = 0;
  double infected_fraction = 0.0;
  double end_time = 0.0;
  std::optional<double> quorum25_time;
  std::optional<double> quorum50_time;
  std::optional<double> prevalence_time;
  std::optional<double> trw_time;
  std::size_t trw_flagged = 0;
  std::size_t alerted_sensors = 0;
  std::size_t total_sensors = 0;
};

/// Mean of the present values; count of the rest reported separately.
sim::SummaryStats FiredStats(
    const std::vector<RaceResult>& results,
    std::optional<double> RaceResult::*member) {
  std::vector<double> values;
  for (const RaceResult& result : results) {
    const auto& value = result.*member;
    values.push_back(value ? *value
                           : std::numeric_limits<double>::quiet_NaN());
  }
  return sim::Summarize(values);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Ablation", "global quorum vs content prevalence vs local TRW");

  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(60'000 * scale) + 1000;
  config.nonempty_slash16s = 900;
  config.slash8_clusters = 35;
  config.seed = 0xDE7;
  core::Scenario scenario = builder.BuildClustered(config);

  const auto selection = core::GreedyHitList(scenario, 60);
  worms::HitListWorm worm{selection.prefixes};
  std::printf("threat: %zu-/16 hit-list covering %.1f%% of %u hosts; %d "
              "trials\n",
              selection.prefixes.size(), 100.0 * selection.coverage,
              scenario.public_hosts, trials);

  prng::Xoshiro256 rng{17};
  const auto sensor_blocks = core::PlaceSensorPerCluster16(scenario, rng);
  net::IntervalSet fleet_space;
  for (const auto& block : sensor_blocks) fleet_space.Add(block);
  fleet_space.Build();

  // Local gateway: the densest targeted /16 (an academic-network stand-in).
  const net::Prefix monitored = selection.prefixes.front();

  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  sim::StudyOptions options;
  options.master_seed = 0xDE7DE7;
  options.label = "combined-fleet";
  auto study = sim::RunStudy(
      options, trials, [&](int /*trial*/, std::uint64_t seed) {
        // Everything mutable is trial-local: population copy, fleet,
        // detectors, engine.
        core::Scenario trial_scenario = scenario;
        telescope::Telescope fleet =
            core::MakeAlertingTelescope(sensor_blocks, 5);
        DetectorRace race{&trial_scenario, &fleet, monitored};
        race.SetFleetChecker(&fleet_space);

        sim::EngineConfig engine_config;
        engine_config.scan_rate = 10.0;
        engine_config.end_time = 900.0;
        engine_config.stop_at_infected_fraction = 0.95 * selection.coverage;
        engine_config.seed = seed;
        sim::Engine engine{trial_scenario.population, worm, reachability,
                           nullptr, engine_config};
        engine.SeedRandomInfections(25);
        const sim::RunResult run = engine.Run(race);

        RaceResult result;
        result.probes = run.total_probes;
        result.infected_fraction = run.FinalInfectedFraction();
        result.end_time = run.end_time;
        const auto alert_times = fleet.AlertTimes();
        result.quorum25_time =
            telescope::QuorumDetectionTime(alert_times, fleet.size(), 0.25);
        result.quorum50_time =
            telescope::QuorumDetectionTime(alert_times, fleet.size(), 0.50);
        result.prevalence_time = race.global_prevalence_time_;
        result.trw_time = race.first_trw_flag_;
        result.trw_flagged = race.trw_.flagged_scanners();
        result.alerted_sensors = fleet.AlertedCount();
        result.total_sensors = fleet.size();
        return result;
      });

  std::uint64_t total_probes = 0;
  std::vector<double> infected;
  std::vector<double> alerted;
  for (const RaceResult& result : study.trials) {
    total_probes += result.probes;
    infected.push_back(result.infected_fraction);
    alerted.push_back(static_cast<double>(result.alerted_sensors));
  }
  const std::size_t fleet_size =
      study.trials.empty() ? 0 : study.trials.front().total_sensors;

  bench::Section("outcome (mean across trials)");
  std::printf("  outbreak: %s%% of population infected\n",
              bench::MeanStd(sim::Summarize(infected), "%.1f", 100.0)
                  .c_str());

  const auto q25 = FiredStats(study.trials, &RaceResult::quorum25_time);
  const auto q50 = FiredStats(study.trials, &RaceResult::quorum50_time);
  std::printf("  global quorum 25%% over %zu darknets: fired in %d/%d "
              "trials%s%s\n",
              fleet_size, q25.count, trials,
              q25.count > 0 ? " at mean t=" : "",
              q25.count > 0 ? bench::MeanStd(q25, "%.0f").c_str() : "");
  std::printf("  global quorum 50%% over %zu darknets: fired in %d/%d "
              "trials%s%s\n",
              fleet_size, q50.count, trials,
              q50.count > 0 ? " at mean t=" : "",
              q50.count > 0 ? bench::MeanStd(q50, "%.0f").c_str() : "");

  const auto prevalence =
      FiredStats(study.trials, &RaceResult::prevalence_time);
  std::printf("  global content prevalence (aggregated fleet): signature in "
              "%d/%d trials%s%s\n",
              prevalence.count, trials,
              prevalence.count > 0 ? " at mean t=" : "",
              prevalence.count > 0 ? bench::MeanStd(prevalence, "%.0f").c_str()
                                   : "");
  std::printf("  per-sensor payload counts are wildly inconsistent: %s of "
              "%zu sensors alerted at all\n",
              bench::MeanStd(sim::Summarize(alerted), "%.0f").c_str(),
              fleet_size);

  const auto trw = FiredStats(study.trials, &RaceResult::trw_time);
  if (trw.count > 0) {
    std::printf("  local TRW gateway at %s: first infected host flagged in "
                "%d/%d trials at mean t=%ss\n",
                monitored.ToString().c_str(), trw.count, trials,
                bench::MeanStd(trw, "%.1f").c_str());
  } else {
    std::printf("  local TRW gateway at %s: no scanner flagged in any "
                "trial\n",
                monitored.ToString().c_str());
  }
  bench::Measured(
      "the hotspot starves the distributed quorum; the aggregated "
      "prevalence detector eventually assembles a signature (hotspots make "
      "its per-vantage view inconsistent, not its global sum); the local "
      "TRW gateway names the infected machine within seconds of its first "
      "scans — the paper's closing recommendation, quantified.");
  bench::PrintStudyThroughput(study.telemetry, total_probes);
  bench::DumpMetrics(metrics_out, "ablation_detectors", &study.telemetry);
  bench::DumpTimeline(timeline_out);
  return 0;
}
