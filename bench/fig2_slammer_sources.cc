// Figure 2 — "Observed unique Slammer infected source IPs by destination
// /24s."
//
// Simulates a population of Slammer hosts (DLL versions split evenly,
// uniform random initial seeds) each firing a long finite window of probes
// from its flawed LCG, observed at the 11 IMS blocks.  The M block's
// upstream provider filters the worm's port, so M records nothing — the
// environmental hotspot the paper calls out.  The bench then compares the
// per-block unique-source counts with the algebraic prediction
// (N × Σ cycle lengths through block / 2^32) and reports the structural
// finding our exact analysis adds: for the pure affine LCG, equal-size
// aligned blocks have nearly invariant cycle sums, so the paper's H-block
// deficit cannot stem from the affine recurrence alone (see EXPERIMENTS.md).
#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "analysis/block_comparison.h"
#include "bench_util.h"
#include "prng/xoshiro.h"
#include "telescope/ims.h"
#include "trace_capture.h"
#include "worms/slammer.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const std::string trace_out = bench::TraceOutArg(argc, argv);
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Figure 2", "unique Slammer sources by destination /24");

  const int hosts = static_cast<int>(20'000 * scale);
  const int probes_per_host = static_cast<int>(100'000 * scale) + 1000;

  const auto& blocks = telescope::ImsBlocks();
  const std::size_t num_blocks = blocks.size();
  int m_index = -1;
  int z_index = -1;

  // Fast /8 pre-filter + small interval table.
  std::array<std::uint8_t, 256> slash8_has_sensor{};
  struct BlockInterval {
    std::uint32_t lo, hi;
    int index;
  };
  std::vector<BlockInterval> intervals;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    slash8_has_sensor[blocks[b].block.first().Slash8()] = 1;
    intervals.push_back(BlockInterval{blocks[b].block.first().value(),
                                      blocks[b].block.last().value(),
                                      static_cast<int>(b)});
    if (blocks[b].label == "M/22") m_index = static_cast<int>(b);
    if (blocks[b].label == "Z/8") z_index = static_cast<int>(b);
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const BlockInterval& a, const BlockInterval& b) {
              return a.lo < b.lo;
            });

  std::vector<std::uint64_t> probes_per_block(num_blocks, 0);
  std::vector<std::uint64_t> sources_per_block(num_blocks, 0);
  std::uint64_t m_filtered_probes = 0;
  // Per-/24 unique sources for the small (non-Z) blocks.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slash24_host_pairs;
  // Per-/24 probe counts inside Z/8.
  std::vector<std::uint32_t> z_slash24_probes(1u << 16, 0);
  const std::uint32_t z_base24 = blocks[static_cast<std::size_t>(z_index)]
                                     .block.first()
                                     .Slash24();

  prng::Xoshiro256 rng{0x51A33E5ull};
  std::array<prng::LcgParams, 3> params = {worms::SlammerLcgParams(0),
                                           worms::SlammerLcgParams(1),
                                           worms::SlammerLcgParams(2)};

  std::vector<std::uint8_t> hit_flags(num_blocks, 0);
  for (int h = 0; h < hosts; ++h) {
    const prng::LcgParams p = params[static_cast<std::size_t>(h) % 3];
    std::uint32_t state = rng.NextU32();
    std::fill(hit_flags.begin(), hit_flags.end(), 0);
    for (int i = 0; i < probes_per_host; ++i) {
      state = p.multiplier * state + p.increment;
      if (!slash8_has_sensor[state >> 24]) continue;
      // Locate the block.
      const BlockInterval* found = nullptr;
      for (const auto& iv : intervals) {
        if (state < iv.lo) break;
        if (state <= iv.hi) {
          found = &iv;
          break;
        }
      }
      if (found == nullptr) continue;
      if (found->index == m_index) {
        ++m_filtered_probes;  // Upstream ACL drops the worm's port.
        continue;
      }
      ++probes_per_block[static_cast<std::size_t>(found->index)];
      hit_flags[static_cast<std::size_t>(found->index)] = 1;
      if (found->index == z_index) {
        ++z_slash24_probes[(state >> 8) - z_base24];
      } else {
        slash24_host_pairs.emplace_back(state >> 8,
                                        static_cast<std::uint32_t>(h));
      }
    }
    for (std::size_t b = 0; b < num_blocks; ++b) {
      sources_per_block[b] += hit_flags[b];
    }
  }

  // Per-/24 unique sources (small blocks).
  std::sort(slash24_host_pairs.begin(), slash24_host_pairs.end());
  slash24_host_pairs.erase(
      std::unique(slash24_host_pairs.begin(), slash24_host_pairs.end()),
      slash24_host_pairs.end());

  bench::Section("per-block observations vs algebraic prediction");
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  std::printf("  %-6s %-12s %-10s %-14s %s\n", "block", "probes", "sources",
              "E[sources]*", "note");
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const double expected =
        analyzer.ExpectedUniqueSources(blocks[b].block,
                                       static_cast<std::uint64_t>(hosts));
    std::printf("  %-6s %-12llu %-10llu %-14.0f %s\n",
                blocks[b].label.c_str(),
                static_cast<unsigned long long>(
                    probes_per_block[b]),
                static_cast<unsigned long long>(sources_per_block[b]),
                expected,
                static_cast<int>(b) == m_index ? "UPSTREAM-FILTERED" : "");
  }
  std::printf("  (*asymptotic: every host eventually visits its whole cycle; "
              "the finite %d-probe window keeps measured counts below it)\n",
              probes_per_host);
  std::printf("  M filtered probes dropped upstream: %llu\n",
              static_cast<unsigned long long>(m_filtered_probes));
  bench::PaperSays("M saw zero Slammer (policy at its upstream provider); H "
                   "saw ~8000 fewer sources than comparable blocks.");

  bench::Section("cycle-length sums through D/H/I (the paper's statistic)");
  for (const char* label : {"D/20", "H/18", "I/17"}) {
    for (const auto& ims : blocks) {
      if (ims.label != label) continue;
      const double sum =
          static_cast<double>(analyzer.SumCycleLengthsThrough(ims.block)) /
          4294967296.0;
      std::printf("  %-6s sum(cycles through block)/2^32 = %.6f\n",
                  label, sum);
    }
  }
  bench::PaperSays("cycle sums for D/H/I were 42.67 / 29.33 / 42.67 (in the "
                   "paper's units): H is traversed by far fewer long "
                   "cycles.");
  bench::Measured(
      "our exact 2-adic analysis shows the pure affine LCG cannot produce "
      "such a deficit for aligned equal-size blocks (their valuation census "
      "is invariant); the measured H/I difference here stems from block "
      "size. The paper's magnitude likely reflects the worm's non-affine "
      "implementation details; see EXPERIMENTS.md for the full discussion.");

  bench::Section("cross-darknet disagreement (per-address source rates)");
  {
    std::vector<analysis::BlockObservation> observations;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      observations.push_back(analysis::BlockObservation{
          blocks[b].label, blocks[b].block.size(), sources_per_block[b]});
    }
    const auto comparison = analysis::CompareBlocks(std::move(observations));
    std::printf("  max spread %.1fx (%.2f orders of magnitude), %zu silent "
                "block(s)\n",
                comparison.max_spread, comparison.orders_of_magnitude,
                comparison.silent_blocks);
    bench::PaperSays("distinct darknet monitors observed orders-of-magnitude "
                     "different amounts of traffic (Cooke et al. [5]).");
  }

  bench::Section("hottest destination /24s inside small blocks");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> per24;  // (count, s24)
  {
    std::size_t i = 0;
    while (i < slash24_host_pairs.size()) {
      std::size_t j = i;
      while (j < slash24_host_pairs.size() &&
             slash24_host_pairs[j].first == slash24_host_pairs[i].first) {
        ++j;
      }
      per24.emplace_back(static_cast<std::uint32_t>(j - i),
                         slash24_host_pairs[i].first);
      i = j;
    }
  }
  std::sort(per24.begin(), per24.end(), std::greater<>());
  for (std::size_t i = 0; i < per24.size() && i < 5; ++i) {
    std::printf("  %s/24: %u unique sources\n",
                net::Ipv4{per24[i].second << 8}.ToString().c_str(),
                per24[i].first);
  }
  std::uint64_t z_max = 0;
  std::uint64_t z_nonzero = 0;
  for (const auto c : z_slash24_probes) {
    z_max = std::max<std::uint64_t>(z_max, c);
    z_nonzero += c > 0 ? 1 : 0;
  }
  std::printf("  Z/8: %llu of 65536 /24s saw probes, max %llu probes in one "
              "/24\n",
              static_cast<unsigned long long>(z_nonzero),
              static_cast<unsigned long long>(z_max));
  const worms::SlammerWorm capture_worm;
  bench::CaptureObservationalTrace(trace_out, "fig2_slammer_sources",
                                   capture_worm,
                                   bench::CaptureOptions{.scale = scale});
  bench::DumpMetrics(metrics_out, "fig2_slammer_sources");
  bench::DumpTimeline(timeline_out);
  return 0;
}
