// Shared `--trace-out` capture step for the figure benches.
//
// Figures 1 and 2 are *analytic* reproductions — they compute their
// histograms in closed form, without the engine — so they have no probe
// stream of their own to record.  When the user asks for a trace, each of
// those benches runs this companion step instead: an observational
// outbreak of the same worm over the IMS telescope with a trace::TraceWriter
// teed in, yielding an engine-true probe capture of the figure's threat
// plus the live per-sensor counters (published as gauges) that CI diffs
// against a later replay of the file.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "trace/format.h"
#include "trace/writer.h"

namespace hotspots::bench {

/// Knobs for the capture companion run.  Defaults give a small (seconds,
/// a few hundred thousand records) but structurally faithful outbreak.
struct CaptureOptions {
  std::uint32_t hosts = 2000;          ///< Scaled by `scale`, +200 floor.
  double scale = 1.0;
  double end_time = 120.0;             ///< Simulated seconds.
  std::uint64_t seed = 0xF161;         ///< Engine seed (stored in header).
  std::uint64_t alert_threshold = 100; ///< Per-sensor payload alert.
  double sample_rate = 1.0;            ///< TraceWriter sampling knob.
};

/// Runs the capture step and writes `trace_path`.  No-op when the path is
/// empty, so benches call it unconditionally.  The scenario fingerprint
/// stored in the trace header mixes the bench name and every knob that
/// shapes the run, tying the file to the configuration that produced it.
inline void CaptureObservationalTrace(const std::string& trace_path,
                                      const char* bench_name,
                                      const sim::Worm& worm,
                                      CaptureOptions options = {}) {
  if (trace_path.empty()) return;
  Section("probe-trace capture (--trace-out)");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig population_config;
  population_config.total_hosts =
      static_cast<std::uint32_t>(options.hosts * options.scale) + 200;
  population_config.slash8_clusters = 20;
  population_config.nonempty_slash16s = 300;
  population_config.seed = options.seed;
  core::Scenario scenario = builder.BuildClustered(population_config);

  // A few hosts in the /24 immediately below each sensor block.  Sequential
  // sweepers that pick a local start walk upward into the darknet — the
  // adjacency mechanism behind the paper's hotspots — so the captured trace
  // reliably lights up the telescope and the live-vs-replay gauge diff in
  // CI compares non-trivial counters.
  for (const auto& block : telescope::ImsBlocks()) {
    const std::uint32_t below = block.block.first().value() - 256;
    for (std::uint32_t i = 0; i < 4; ++i) {
      const net::Ipv4 address{below + 10 + i * 40};
      if (scenario.population.FindPublic(address) == sim::kInvalidHost) {
        scenario.population.AddHost(address);
      }
    }
  }

  const topology::Reachability reachability{nullptr, &scenario.nats, nullptr,
                                            0.0};
  sim::EngineConfig engine_config;
  engine_config.scan_rate = 10.0;
  engine_config.end_time = options.end_time;
  engine_config.stop_at_infected_fraction = 2.0;  // Observational run.
  engine_config.seed = options.seed;
  sim::Engine engine{scenario.population, worm, reachability, &scenario.nats,
                     engine_config};
  for (sim::HostId id = 0; id < scenario.population.size(); ++id) {
    engine.SeedInfection(id);
  }

  telescope::SensorOptions sensor_options;
  sensor_options.alert_threshold = options.alert_threshold;
  telescope::Telescope ims = telescope::MakeImsTelescope(sensor_options);
  ims.SetThreatRequiresHandshake(worm.requires_handshake());

  trace::Fingerprint scenario_fingerprint;
  scenario_fingerprint.MixString(bench_name);
  scenario_fingerprint.Mix(population_config.total_hosts);
  scenario_fingerprint.Mix(options.seed);
  scenario_fingerprint.MixDouble(options.end_time);
  scenario_fingerprint.MixDouble(options.sample_rate);

  trace::TraceWriterOptions writer_options;
  writer_options.scenario_fingerprint = scenario_fingerprint.hash;
  writer_options.seed = engine_config.seed;
  writer_options.sample_rate = options.sample_rate;
  trace::TraceWriter writer{trace_path, writer_options};

  const sim::RunResult run = engine.Run({&ims, &writer});
  writer.Finish();
  ims.PublishSensorMetrics(run.end_time);

  std::printf("  %s outbreak: %" PRIu64 " probes over %.0f simulated s, "
              "%zu hosts\n",
              std::string(worm.name()).c_str(), run.total_probes,
              run.end_time, scenario.population.size());
  std::printf("  captured %" PRIu64 " records in %" PRIu64 " blocks "
              "(%" PRIu64 " bytes, %.2f B/record) -> %s\n",
              writer.records_written(), writer.blocks_written(),
              writer.bytes_written(),
              writer.records_written() > 0
                  ? static_cast<double>(writer.bytes_written()) /
                        static_cast<double>(writer.records_written())
                  : 0.0,
              trace_path.c_str());
  std::printf("  header fingerprint %016" PRIx64 ", seed %" PRIu64 "\n",
              scenario_fingerprint.hash, engine_config.seed);
}

}  // namespace hotspots::bench
