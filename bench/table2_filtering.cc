// Table 2 — "The top 3 Fortune 100 enterprises and top 3 broadband ISPs
// with worm infections detected by IMS."
//
// Synthetic allocation registry: three enterprises with perimeter
// firewalls, three broadband ISPs without.  Equal-quality infected
// populations are planted inside all six; each worm then scans for a fixed
// window and the IMS darknet records the *source IPs it observes*.  The
// table counts, per organization, how many of its infected hosts ever
// showed up at the darknet — the paper's filtering asymmetry: broadband
// leaks tens of thousands of infections, enterprises leak essentially none.
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "prng/xoshiro.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "worms/blaster.h"
#include "worms/codered2.h"
#include "worms/slammer.h"

using namespace hotspots;

namespace {

struct OrgPlan {
  const char* name;
  topology::OrgKind kind;
  net::Prefix holding;
  bool filtered;
  int infected_hosts;
};

/// Collects the distinct source addresses observed at any sensor.
class SourceCollector final : public sim::ProbeObserver {
 public:
  explicit SourceCollector(const telescope::Telescope* sensors)
      : sensors_(sensors) {}

  void OnProbe(const sim::ProbeEvent& event) override {
    if (event.delivery != topology::Delivery::kDelivered) return;
    // Did it land on monitored space?
    for (std::size_t i = 0; i < telescope::ImsBlocks().size(); ++i) {
      if (telescope::ImsBlocks()[i].block.Contains(event.dst)) {
        observed_.insert(event.src_address.value());
        return;
      }
    }
  }

  [[nodiscard]] const std::unordered_set<std::uint32_t>& observed() const {
    return observed_;
  }
  void Reset() { observed_.clear(); }

 private:
  const telescope::Telescope* sensors_;
  std::unordered_set<std::uint32_t> observed_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Table 2", "enterprise egress filtering vs broadband leakage");

  const std::vector<OrgPlan> plans = {
      {"Corp-Banking", topology::OrgKind::kEnterprise,
       net::Prefix{net::Ipv4{20, 16, 0, 0}, 12}, true,
       static_cast<int>(600 * scale) + 10},
      {"Corp-Media", topology::OrgKind::kEnterprise,
       net::Prefix{net::Ipv4{33, 64, 0, 0}, 11}, true,
       static_cast<int>(500 * scale) + 10},
      {"Corp-Logistics", topology::OrgKind::kEnterprise,
       net::Prefix{net::Ipv4{54, 128, 0, 0}, 12}, true,
       static_cast<int>(400 * scale) + 10},
      {"ISP-A", topology::OrgKind::kBroadbandIsp,
       net::Prefix{net::Ipv4{68, 0, 0, 0}, 10}, false,
       static_cast<int>(3000 * scale) + 10},
      {"ISP-B", topology::OrgKind::kBroadbandIsp,
       net::Prefix{net::Ipv4{81, 64, 0, 0}, 11}, false,
       static_cast<int>(2400 * scale) + 10},
      {"ISP-C", topology::OrgKind::kBroadbandIsp,
       net::Prefix{net::Ipv4{201, 128, 0, 0}, 11}, false,
       static_cast<int>(1800 * scale) + 10},
  };

  topology::AllocationRegistry registry;
  for (const OrgPlan& plan : plans) {
    registry.AddOrg(plan.name, plan.kind, {plan.holding}, plan.filtered);
  }
  registry.Build();

  // Plant infected hosts.
  sim::Population population;
  prng::Xoshiro256 rng{0x7AB1E2ull};
  std::vector<std::pair<std::size_t, sim::HostId>> host_org;  // (plan, host).
  for (std::size_t p = 0; p < plans.size(); ++p) {
    std::unordered_set<std::uint32_t> used;
    for (int i = 0; i < plans[p].infected_hosts; ++i) {
      for (;;) {
        const std::uint32_t address =
            plans[p].holding.first().value() +
            static_cast<std::uint32_t>(
                rng.Next() % plans[p].holding.size());
        if (!used.insert(address).second) continue;
        host_org.emplace_back(p, population.AddHost(net::Ipv4{address}));
        break;
      }
    }
  }
  population.Build(&registry);

  const topology::Reachability reachability{&registry, nullptr, nullptr, 0.0};
  telescope::SensorOptions options;
  options.track_unique_sources = false;
  options.track_per_slash24 = false;
  telescope::Telescope ims = telescope::MakeImsTelescope(options);
  SourceCollector collector{&ims};

  // Run each worm over the same planted population.
  const worms::CodeRed2Worm codered;
  const worms::SlammerWorm slammer;
  const worms::BlasterWorm blaster = worms::BlasterWorm::Paper();
  const sim::Worm* worm_list[] = {&codered, &slammer, &blaster};
  std::vector<std::vector<std::size_t>> observed_per_org(
      plans.size(), std::vector<std::size_t>(3, 0));

  for (int w = 0; w < 3; ++w) {
    population.ResetAllToVulnerable();
    sim::EngineConfig config;
    config.scan_rate = 10.0;
    config.end_time = 800.0;  // 8,000 probes per host per worm.
    config.stop_at_infected_fraction = 2.0;
    config.seed = 100 + static_cast<std::uint64_t>(w);
    sim::Engine engine{population, *worm_list[w], reachability, nullptr,
                       config};
    for (sim::HostId id = 0; id < population.size(); ++id) {
      engine.SeedInfection(id);
    }
    collector.Reset();
    engine.Run(collector);
    for (const std::uint32_t src : collector.observed()) {
      const auto org = registry.OrgOf(net::Ipv4{src});
      if (org != topology::kInvalidOrg) {
        ++observed_per_org[static_cast<std::size_t>(org)]
                          [static_cast<std::size_t>(w)];
      }
    }
  }

  bench::Section("infected IPs observed at the IMS darknet, by organization");
  std::printf("  %-16s %-10s %-12s %-10s %-12s %s\n", "organization",
              "kind", "planted", "CRII", "Slammer", "Blaster");
  for (std::size_t p = 0; p < plans.size(); ++p) {
    std::printf("  %-16s %-10s %-12d %-10zu %-12zu %zu\n", plans[p].name,
                std::string{ToString(plans[p].kind)}.c_str(),
                plans[p].infected_hosts, observed_per_org[p][0],
                observed_per_org[p][1], observed_per_org[p][2]);
  }
  bench::PaperSays("Fortune-100 enterprises: almost no external indication "
                   "of infections; top broadband ISPs: tens of thousands of "
                   "infections leaking.");
  bench::Measured("perimeter-filtered enterprises leak zero source IPs to "
                  "the darknet; unfiltered broadband leaks most of its "
                  "infected hosts (Blaster less than Slammer/CRII because "
                  "its sequential sweep crosses monitored space rarely in a "
                  "bounded window).");
  bench::DumpMetrics(metrics_out, "table2_filtering");
  bench::DumpTimeline(timeline_out);
  return 0;
}
