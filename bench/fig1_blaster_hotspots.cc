// Figure 1 — "Observed unique source IPs of Blaster infection attempts by
// /24", plus the GetTickCount forensics of Section 4.2.2.
//
// Pipeline:
//   1. Reproduce the paper's reboot-loop measurement (mean ≈ 30 s, σ ≈ 1 s
//      per hardware generation).
//   2. Simulate a Blaster-infected population.  Each infection episode
//      seeds srand(GetTickCount()) from the boot-entropy model, derives its
//      starting /24 exactly like the worm (60 % rand()-derived, 40 % local)
//      and sequentially sweeps a bounded window (hosts get cleaned or
//      rebooted; each reboot is a fresh episode with a fresh seed).
//      The sweep footprint is an interval in /24 space, so per-sensor
//      unique-source counts are computed exactly by interval stabbing.
//   3. Report per-/24 unique-source histograms over the 11 IMS blocks, and
//      run the seed forensics: map the hottest /24 back to candidate
//      GetTickCount values and check they are plausible boot times while
//      cold /24s map back to nothing plausible.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "analysis/seed_forensics.h"
#include "analysis/uniformity.h"
#include "bench_util.h"
#include "net/special_ranges.h"
#include "prng/tickcount.h"
#include "prng/xoshiro.h"
#include "telescope/ims.h"
#include "trace_capture.h"
#include "worms/blaster.h"

using namespace hotspots;

namespace {

struct SensorSlash24 {
  std::uint32_t slash24 = 0;
  int block = 0;
  std::uint32_t sources = 0;
};

constexpr std::uint32_t kSlash24Space = 1u << 24;

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const std::string trace_out = bench::TraceOutArg(argc, argv);
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Figure 1", "unique Blaster sources by destination /24");

  // ------------------------------------------------------------------
  // Step 1: the reboot-loop measurement.
  // ------------------------------------------------------------------
  bench::Section("GetTickCount() at worm launch (reboot-loop measurement)");
  prng::Xoshiro256 rng{0xB1A57E5ull};
  const prng::BootEntropyModel boot = prng::BootEntropyModel::Paper();
  for (const auto& generation : boot.generations()) {
    const auto ticks = boot.RebootLoopExperiment(generation, 2000, rng);
    double mean = 0;
    for (const auto t : ticks) mean += t;
    mean /= static_cast<double>(ticks.size());
    double var = 0;
    for (const auto t : ticks) {
      var += (t - mean) * (t - mean);
    }
    var /= static_cast<double>(ticks.size());
    std::printf("  %-12s boot mean %6.2f s  stddev %4.2f s\n",
                generation.name.c_str(), mean / 1000.0,
                std::sqrt(var) / 1000.0);
  }
  bench::PaperSays("mean boot time ~30 s with ~1 s standard deviation across "
                   "PII/PIII/PIV.");

  // ------------------------------------------------------------------
  // Step 2: infected-population episodes.
  // ------------------------------------------------------------------
  const int hosts = static_cast<int>(30'000 * scale);
  const int episodes_per_host = 3;
  // Sweep window: ~12 h of scanning at 10 probes/s before cleanup/reboot,
  // ≈ 432k addresses ≈ 1700 /24s.
  const std::uint32_t sweep = 1700;
  const worms::BlasterWorm worm = worms::BlasterWorm::Paper();

  // Sensor /24 index over the 11 IMS blocks.
  std::vector<SensorSlash24> sensors;
  const auto& blocks = telescope::ImsBlocks();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto first = blocks[b].block.first().Slash24();
    const auto last = blocks[b].block.last().Slash24();
    for (std::uint32_t s = first; s <= last; ++s) {
      sensors.push_back(SensorSlash24{s, static_cast<int>(b), 0});
    }
  }
  std::sort(sensors.begin(), sensors.end(),
            [](const SensorSlash24& a, const SensorSlash24& b) {
              return a.slash24 < b.slash24;
            });
  std::vector<std::uint32_t> sensor_keys;
  sensor_keys.reserve(sensors.size());
  for (const auto& s : sensors) sensor_keys.push_back(s.slash24);

  // Episode generation + interval stabbing.
  std::vector<std::vector<std::uint32_t>> sources_per_sensor(sensors.size());
  std::vector<std::uint32_t> episode_ticks;
  episode_ticks.reserve(static_cast<std::size_t>(hosts) * episodes_per_host);
  for (int h = 0; h < hosts; ++h) {
    // The host's own (public) address, for the 40 % local-start branch.
    std::uint32_t own = rng.NextU32();
    while (net::IsNonTargetable(net::Ipv4{own}) ||
           net::IsPrivate(net::Ipv4{own})) {
      own = rng.NextU32();
    }
    for (int e = 0; e < episodes_per_host; ++e) {
      const std::uint32_t tick = boot.SampleTickCount(rng);
      episode_ticks.push_back(tick);
      prng::MsvcRand rand{tick};
      net::Ipv4 start;
      if (rand.NextMod(20) < 12) {
        start = worms::BlasterWorm::StartAddressForSeed(tick);
      } else {
        start = worm.LocalStartAddress(net::Ipv4{own}, rand);
      }
      const std::uint32_t start24 = start.Slash24();
      // Window [start24, start24+sweep) possibly wrapping.
      const auto stab = [&](std::uint32_t lo, std::uint32_t hi) {
        auto it = std::lower_bound(sensor_keys.begin(), sensor_keys.end(), lo);
        for (; it != sensor_keys.end() && *it < hi; ++it) {
          sources_per_sensor[static_cast<std::size_t>(
                                 it - sensor_keys.begin())]
              .push_back(static_cast<std::uint32_t>(h));
        }
      };
      if (start24 + sweep <= kSlash24Space) {
        stab(start24, start24 + sweep);
      } else {
        stab(start24, kSlash24Space);
        stab(0, (start24 + sweep) & (kSlash24Space - 1));
      }
    }
  }
  // Unique sources per sensor /24.
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    auto& v = sources_per_sensor[i];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    sensors[i].sources = static_cast<std::uint32_t>(v.size());
  }

  // ------------------------------------------------------------------
  // Step 3: report.
  // ------------------------------------------------------------------
  bench::Section("unique Blaster sources per destination /24, by IMS block");
  std::printf("  %-6s %-8s %-10s %-10s %-10s %s\n", "block", "/24s", "mean",
              "max", "total", "hottest /24");
  std::uint32_t hottest = 0;
  std::uint32_t hottest_count = 0;
  std::uint32_t coldest = 0;
  std::uint32_t coldest_count = ~0u;
  std::vector<std::uint64_t> all_counts;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::uint64_t total = 0;
    std::uint32_t max = 0;
    std::uint32_t arg_max = 0;
    std::uint32_t n = 0;
    for (const auto& s : sensors) {
      if (s.block != static_cast<int>(b)) continue;
      ++n;
      total += s.sources;
      all_counts.push_back(s.sources);
      if (s.sources > max) {
        max = s.sources;
        arg_max = s.slash24;
      }
      if (s.sources > hottest_count) {
        hottest_count = s.sources;
        hottest = s.slash24;
      }
      if (s.sources < coldest_count) {
        coldest_count = s.sources;
        coldest = s.slash24;
      }
    }
    if (max > 0) {
      std::printf("  %-6s %-8u %-10.2f %-10u %-10llu %s/24 (%u)\n",
                  blocks[b].label.c_str(), n,
                  static_cast<double>(total) / n, max,
                  static_cast<unsigned long long>(total),
                  net::Ipv4{arg_max << 8}.ToString().c_str(), max);
    } else {
      std::printf("  %-6s %-8u %-10.2f %-10u %-10llu -\n",
                  blocks[b].label.c_str(), n,
                  static_cast<double>(total) / n, max,
                  static_cast<unsigned long long>(total));
    }
  }
  const auto report = analysis::AnalyzeUniformity(all_counts);
  std::printf("  per-/24 uniformity: chi2/dof=%.2f gini=%.3f peak/mean=%.1f "
              "-> %s\n",
              report.chi_square / report.chi_square_dof, report.gini,
              report.peak_to_mean,
              report.LooksNonUniform() ? "HOTSPOTS" : "uniform");
  bench::PaperSays("hotspots are clearly visible in the middle of the I "
                   "sensor block (Figure 1).");

  // ------------------------------------------------------------------
  // Step 4: seed forensics.
  // ------------------------------------------------------------------
  bench::Section("seed forensics: inverting the hottest /24");
  analysis::SeedSearchConfig config;
  config.sweep_slash24s = sweep;
  // GetTickCount advances in 16 ms steps, so only seeds on that grid are
  // reachable; searching the grid alone cuts the candidate space 16-fold.
  config.min_tick = 1008;
  config.tick_step = boot.tick_resolution_ms();
  const auto bucket_report = [](const char* label, net::Ipv4 address,
                                std::uint32_t count,
                                const std::vector<analysis::SeedCandidate>&
                                    candidates) {
    std::size_t boot_window = 0;   // Fresh-boot seeds (< 40 s).
    std::size_t short_uptime = 0;  // The paper's 1–20-minute band.
    for (const auto& c : candidates) {
      if (c.UptimeSeconds() < 40.0) ++boot_window;
      if (c.UptimeSeconds() < 20.0 * 60.0) ++short_uptime;
    }
    std::printf("  %s /24 %s (%u sources): %zu candidate seeds in [1s,2.8h]; "
                "%zu boot-plausible (<40s), %zu within 20 min\n",
                label, address.ToString().c_str(), count, candidates.size(),
                boot_window, short_uptime);
  };
  const net::Ipv4 hot_address{hottest << 8};
  const auto candidates = analysis::FindSeedsCovering(hot_address, config);
  bucket_report("hottest", hot_address, hottest_count, candidates);
  // Ground truth: which episode ticks actually covered the hottest /24?
  std::unordered_set<std::uint32_t> truth;
  for (const std::uint32_t tick : episode_ticks) {
    const std::uint32_t s24 =
        worms::BlasterWorm::StartAddressForSeed(tick).Slash24();
    if (((hottest - s24) & (kSlash24Space - 1)) < sweep) truth.insert(tick);
  }
  std::size_t recovered = 0;
  for (const auto& c : candidates) {
    if (truth.contains(c.tick_count)) ++recovered;
  }
  std::printf("  ground truth: %zu distinct random-start ticks actually "
              "covered it; forensics recovered %zu of them\n",
              truth.size(), recovered);
  bench::PaperSays("the I-block spike maps to a GetTickCount of 2.3 minutes; "
                   "spikes map to seeds of ~1-20 minutes centred on 4-5 "
                   "minutes; cold ranges map to implausible uptimes of hours "
                   "to days.");
  const net::Ipv4 cold_address{coldest << 8};
  const auto cold = analysis::FindSeedsCovering(cold_address, config);
  bucket_report("coldest", cold_address, coldest_count, cold);
  bench::Measured(
      "the forensic inversion recovers the ground-truth seeds behind the "
      "spike (see above); the 16 ms GetTickCount grid cuts the candidate "
      "space 16-fold, and the spike's explaining seeds sit in the "
      "boot-plausible band while a cold /24's candidates are only chance "
      "grid hits that no host ever drew.");
  bench::CaptureObservationalTrace(trace_out, "fig1_blaster_hotspots", worm,
                                   bench::CaptureOptions{.scale = scale});
  bench::DumpMetrics(metrics_out, "fig1_blaster_hotspots");
  bench::DumpTimeline(timeline_out);
  return 0;
}
