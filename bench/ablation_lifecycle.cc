// Ablation — host lifecycle (patching, disinfection, exploit latency).
//
// The paper's epidemic model names an immune population but its
// simulations never move hosts into it.  This bench sweeps the engine's
// lifecycle extensions over the Figure-5a scenario to show (a) what
// patching rate is needed to blunt a hit-list worm, (b) how cleanup
// (disinfection) interacts with detection — cleaned hosts stop feeding
// sensors, so aggressive response *reduces* the evidence available to
// distributed detectors.
#include <cstdio>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Ablation", "patching / disinfection / exploit latency");

  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(40'000 * scale) + 1000;
  config.nonempty_slash16s = 600;
  config.slash8_clusters = 30;
  config.seed = 0x11FE;
  core::Scenario scenario = builder.BuildClustered(config);
  const auto selection = core::GreedyHitList(scenario, 100);
  worms::HitListWorm worm{selection.prefixes};
  prng::Xoshiro256 rng{5};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, rng);

  const auto run = [&](double patch, double disinfect, double latency) {
    core::DetectionStudyConfig study;
    study.engine.scan_rate = 10.0;
    study.engine.end_time = 1200.0;
    study.engine.stop_at_infected_fraction = 0.95 * selection.coverage;
    study.engine.patch_rate = patch;
    study.engine.disinfect_rate = disinfect;
    study.engine.infection_latency = latency;
    study.engine.seed = 0xF00D;
    study.alert_threshold = 5;
    study.seed_infections = 25;
    return core::RunDetectionStudy(scenario, worm, sensors, study);
  };

  bench::Section("patch-rate sweep (fraction of vulnerable patched per s)");
  std::printf("  %-10s %-12s %-12s %-10s\n", "rate", "ever-infected",
              "immune", "alerted");
  for (const double rate : {0.0, 0.0005, 0.002, 0.01}) {
    const auto outcome = run(rate, 0.0, 0.0);
    std::printf("  %-10.4f %-12.3f %-12.3f %zu/%zu\n", rate,
                outcome.run.FinalInfectedFraction(),
                static_cast<double>(outcome.run.final_immune) /
                    static_cast<double>(outcome.run.eligible_population),
                outcome.alerted_sensors, outcome.total_sensors);
  }

  bench::Section("disinfection sweep (cleanup rate of infected hosts)");
  std::printf("  %-10s %-12s %-12s %-10s\n", "rate", "ever-infected",
              "immune", "alerted");
  for (const double rate : {0.0, 0.001, 0.005, 0.02}) {
    const auto outcome = run(0.0, rate, 0.0);
    std::printf("  %-10.4f %-12.3f %-12.3f %zu/%zu\n", rate,
                outcome.run.FinalInfectedFraction(),
                static_cast<double>(outcome.run.final_immune) /
                    static_cast<double>(outcome.run.eligible_population),
                outcome.alerted_sensors, outcome.total_sensors);
  }

  bench::Section("exploit-latency sweep (seconds before a new instance scans)");
  std::printf("  %-10s %-12s %-14s\n", "latency", "ever-infected",
              "t(25%% of covered)");
  for (const double latency : {0.0, 5.0, 20.0, 60.0}) {
    const auto outcome = run(0.0, 0.0, latency);
    double t25 = -1;
    for (const auto& point : outcome.curve) {
      if (point.infected_fraction >= 0.25 * selection.coverage) {
        t25 = point.time;
        break;
      }
    }
    std::printf("  %-10.0f %-12.3f %-14.0f\n", latency,
                outcome.run.FinalInfectedFraction(), t25);
  }
  bench::Measured(
      "patching races the epidemic and wins only at aggressive rates "
      "(≈1%%/s); cleanup WITHOUT patching barely dents ever-infected — the "
      "epidemic keeps drawing fresh victims from the untouched vulnerable "
      "pool, and surviving scanners keep sensors alerting; exploit latency "
      "shifts the "
      "whole outbreak curve right without changing its endpoint.");
  return 0;
}
