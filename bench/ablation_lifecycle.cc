// Ablation — host lifecycle (patching, disinfection, exploit latency).
//
// The paper's epidemic model names an immune population but its
// simulations never move hosts into it.  This bench sweeps the engine's
// lifecycle extensions over the Figure-5a scenario to show (a) what
// patching rate is needed to blunt a hit-list worm, (b) how cleanup
// (disinfection) interacts with detection — cleaned hosts stop feeding
// sensors, so aggressive response *reduces* the evidence available to
// distributed detectors.  Every sweep point is a Monte-Carlo mean over
// HOTSPOTS_TRIALS independent outbreaks run across HOTSPOTS_THREADS.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Ablation", "patching / disinfection / exploit latency");

  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(40'000 * scale) + 1000;
  config.nonempty_slash16s = 600;
  config.slash8_clusters = 30;
  config.seed = 0x11FE;
  core::Scenario scenario = builder.BuildClustered(config);
  const auto selection = core::GreedyHitList(scenario, 100);
  worms::HitListWorm worm{selection.prefixes};
  prng::Xoshiro256 rng{5};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, rng);
  std::printf("  %d trials per sweep point\n", trials);

  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  const auto run = [&](double patch, double disinfect, double latency) {
    core::MonteCarloStudyConfig mc;
    mc.trials = trials;
    mc.master_seed = 0xF00D;
    char label[64];
    std::snprintf(label, sizeof label, "patch=%g,disinfect=%g,latency=%g",
                  patch, disinfect, latency);
    mc.label = label;
    mc.study.engine.scan_rate = 10.0;
    mc.study.engine.end_time = 1200.0;
    mc.study.engine.stop_at_infected_fraction = 0.95 * selection.coverage;
    mc.study.engine.patch_rate = patch;
    mc.study.engine.disinfect_rate = disinfect;
    mc.study.engine.infection_latency = latency;
    mc.study.alert_threshold = 5;
    mc.study.seed_infections = 25;
    auto summary =
        core::RunDetectionStudyMonteCarlo(scenario, worm, sensors, mc);
    total_probes += summary.total_probes;
    overall.Merge(summary.telemetry);
    return summary;
  };

  bench::Section("patch-rate sweep (fraction of vulnerable patched per s)");
  std::printf("  %-10s %-16s %-16s %-10s\n", "rate", "ever-infected",
              "immune", "alerted");
  for (const double rate : {0.0, 0.0005, 0.002, 0.01}) {
    const auto outcome = run(rate, 0.0, 0.0);
    std::vector<double> immune;
    for (const auto& trial : outcome.trials) {
      immune.push_back(static_cast<double>(trial.run.final_immune) /
                       static_cast<double>(trial.run.eligible_population));
    }
    std::printf("  %-10.4f %-16s %-16s %s\n", rate,
                bench::MeanStd(outcome.infected_fraction, "%.3f").c_str(),
                bench::MeanStd(sim::Summarize(immune), "%.3f").c_str(),
                bench::MeanStd(outcome.alerted_sensors, "%.0f").c_str());
  }

  bench::Section("disinfection sweep (cleanup rate of infected hosts)");
  std::printf("  %-10s %-16s %-16s %-10s\n", "rate", "ever-infected",
              "immune", "alerted");
  for (const double rate : {0.0, 0.001, 0.005, 0.02}) {
    const auto outcome = run(0.0, rate, 0.0);
    std::vector<double> immune;
    for (const auto& trial : outcome.trials) {
      immune.push_back(static_cast<double>(trial.run.final_immune) /
                       static_cast<double>(trial.run.eligible_population));
    }
    std::printf("  %-10.4f %-16s %-16s %s\n", rate,
                bench::MeanStd(outcome.infected_fraction, "%.3f").c_str(),
                bench::MeanStd(sim::Summarize(immune), "%.3f").c_str(),
                bench::MeanStd(outcome.alerted_sensors, "%.0f").c_str());
  }

  bench::Section("exploit-latency sweep (seconds before a new instance scans)");
  std::printf("  %-10s %-16s %-14s\n", "latency", "ever-infected",
              "t(25%% of covered)");
  for (const double latency : {0.0, 5.0, 20.0, 60.0}) {
    const auto outcome = run(0.0, 0.0, latency);
    std::vector<double> t25;
    for (const auto& trial : outcome.trials) {
      t25.push_back(sim::TimeToInfectedFraction(trial.run,
                                                0.25 * selection.coverage));
    }
    const auto t25_stats = sim::Summarize(t25);
    std::printf("  %-10.0f %-16s %s (%d/%d trials)\n", latency,
                bench::MeanStd(outcome.infected_fraction, "%.3f").c_str(),
                bench::MeanStd(t25_stats, "%.0f").c_str(), t25_stats.count,
                trials);
  }
  bench::Measured(
      "patching races the epidemic and wins only at aggressive rates "
      "(≈1%%/s); cleanup WITHOUT patching barely dents ever-infected — the "
      "epidemic keeps drawing fresh victims from the untouched vulnerable "
      "pool, and surviving scanners keep sensors alerting; exploit latency "
      "shifts the "
      "whole outbreak curve right without changing its endpoint.");
  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "ablation_lifecycle", &overall);
  bench::DumpTimeline(timeline_out);
  return 0;
}
