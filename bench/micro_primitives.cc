// Microbenchmarks of the probe-loop primitives (google-benchmark).
//
// The Section-5 simulations emit up to billions of probes; these benches
// track the cost of each stage of the per-probe pipeline so regressions in
// the hot path are visible.
#include <benchmark/benchmark.h>

#include <unordered_set>

#include "net/interval_set.h"
#include "net/slash16_index.h"
#include "prng/lcg.h"
#include "prng/msvc_rand.h"
#include "prng/xoshiro.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "worms/codered2.h"
#include "worms/slammer.h"
#include "worms/uniform.h"

namespace {

using namespace hotspots;

void BM_Xoshiro(benchmark::State& state) {
  prng::Xoshiro256 rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_MsvcRand(benchmark::State& state) {
  prng::MsvcRand rand{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rand.Next());
  }
}
BENCHMARK(BM_MsvcRand);

void BM_SlammerLcgStep(benchmark::State& state) {
  prng::Lcg lcg{worms::SlammerLcgParams(1), 0x1234};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lcg.Next());
  }
}
BENCHMARK(BM_SlammerLcgStep);

void BM_ScannerNextTarget_Uniform(benchmark::State& state) {
  worms::UniformWorm worm;
  sim::Host host;
  host.address = net::Ipv4{10, 0, 0, 1};
  auto scanner = worm.MakeScanner(host, 7);
  prng::Xoshiro256 rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner->NextTarget(rng));
  }
}
BENCHMARK(BM_ScannerNextTarget_Uniform);

void BM_ScannerNextTarget_CodeRed2(benchmark::State& state) {
  worms::CodeRed2Worm worm;
  auto scanner = worm.MakeQuarantineScanner(net::Ipv4{141, 20, 3, 4}, 5);
  prng::Xoshiro256 rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner->NextTarget(rng));
  }
}
BENCHMARK(BM_ScannerNextTarget_CodeRed2);

void BM_TelescopeLookup(benchmark::State& state) {
  telescope::SensorOptions options;
  options.track_unique_sources = false;
  options.track_per_slash24 = false;
  telescope::Telescope ims = telescope::MakeImsTelescope(options);
  prng::Xoshiro256 rng{1};
  std::uint64_t t = 0;
  for (auto _ : state) {
    ims.Observe(static_cast<double>(t++), net::Ipv4{1, 2, 3, 4},
                net::Ipv4{rng.NextU32()});
  }
}
BENCHMARK(BM_TelescopeLookup);

void BM_ReachabilityDecide(benchmark::State& state) {
  topology::IngressAclSet acls;
  acls.Block(net::Prefix{net::Ipv4{192, 88, 16, 0}, 22});
  acls.Build();
  topology::NatDirectory nats;
  nats.AddSite();
  const topology::Reachability reach{nullptr, &nats, &acls, 0.001};
  prng::Xoshiro256 rng{1};
  topology::Probe probe;
  probe.src = net::Ipv4{1, 2, 3, 4};
  for (auto _ : state) {
    probe.dst = net::Ipv4{rng.NextU32()};
    benchmark::DoNotOptimize(reach.Decide(probe, rng));
  }
}
BENCHMARK(BM_ReachabilityDecide);

// DESIGN.md ablation #2: sorted-interval binary search vs per-/16
// direct-map, at sensor-fleet sizes (the /24 blocks of Figure 5's fleets).
void BM_SensorLookup_IntervalMap(benchmark::State& state) {
  net::IntervalMap<int> map;
  prng::Xoshiro256 rng{3};
  std::unordered_set<std::uint32_t> used;
  for (int i = 0; i < state.range(0); ++i) {
    std::uint32_t base = rng.NextU32() & 0xFFFFFF00u;
    while (!used.insert(base).second) base = rng.NextU32() & 0xFFFFFF00u;
    map.Add(base, base | 0xFF, i);
  }
  map.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Lookup(net::Ipv4{rng.NextU32()}));
  }
}
BENCHMARK(BM_SensorLookup_IntervalMap)->Arg(256)->Arg(4481)->Arg(10000);

void BM_SensorLookup_Slash16Index(benchmark::State& state) {
  net::Slash16Index<int> index;
  prng::Xoshiro256 rng{3};
  std::unordered_set<std::uint32_t> used;
  for (int i = 0; i < state.range(0); ++i) {
    std::uint32_t base = rng.NextU32() & 0xFFFFFF00u;
    while (!used.insert(base).second) base = rng.NextU32() & 0xFFFFFF00u;
    index.Add(base, base | 0xFF, i);
  }
  index.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(net::Ipv4{rng.NextU32()}));
  }
}
BENCHMARK(BM_SensorLookup_Slash16Index)->Arg(256)->Arg(4481)->Arg(10000);

void BM_IntervalSetContains(benchmark::State& state) {
  net::IntervalSet set;
  prng::Xoshiro256 rng{2};
  for (int i = 0; i < state.range(0); ++i) {
    const std::uint32_t base = rng.NextU32() & 0xFFFFFF00u;
    set.Add(base, base | 0xFF);
  }
  set.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Contains(net::Ipv4{rng.NextU32()}));
  }
}
BENCHMARK(BM_IntervalSetContains)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace
