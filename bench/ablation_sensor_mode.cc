// Ablation — active (SYN-ACK responding) vs passive darknet sensors.
//
// The IMS sensors behind the paper's data "actively responded to TCP SYN
// packets with a SYN-ACK packet to elicit the first data payload"
// (Section 4.1).  This bench quantifies why: against a TCP worm
// (CodeRedII), a passive fleet sees the packets but can never *identify*
// the threat, so payload-based alerting never fires; against a UDP worm
// (Slammer) the two fleets are equivalent.  Each (threat, fleet) cell is a
// Monte-Carlo mean over HOTSPOTS_TRIALS outbreaks run across
// HOTSPOTS_THREADS threads.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "sim/study.h"
#include "telescope/telescope.h"
#include "topology/reachability.h"
#include "worms/codered2.h"
#include "worms/slammer.h"

using namespace hotspots;

namespace {

struct FleetResult {
  std::uint64_t probes = 0;
  double identified = 0;
  double unidentified = 0;
  double alerted = 0;
  std::size_t sensors = 0;
};

/// One (threat, fleet-mode) trial: its own scenario copy, fleet and engine.
FleetResult RunFleetTrial(const core::Scenario& base, const sim::Worm& worm,
                          bool active_responder, std::uint64_t seed) {
  core::Scenario scenario = base;
  scenario.population.ResetAllToVulnerable();

  telescope::SensorOptions options;
  options.track_unique_sources = false;
  options.track_per_slash24 = false;
  options.alert_threshold = 5;
  options.active_responder = active_responder;
  telescope::Telescope fleet{options};
  // One sensor per populated /16 — the Figure-5b deployment.
  prng::Xoshiro256 rng{11};
  for (const auto& prefix : core::PlaceSensorPerCluster16(scenario, rng)) {
    fleet.AddSensor(prefix.ToString(), prefix);
  }
  fleet.Build();
  fleet.SetThreatRequiresHandshake(worm.requires_handshake());

  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  sim::EngineConfig config;
  config.scan_rate = 10.0;
  config.end_time = 600.0;
  config.stop_at_infected_fraction = 0.9;
  config.seed = seed;
  sim::Engine engine{scenario.population, worm, reachability, nullptr,
                     config};
  engine.SeedRandomInfections(25);
  const sim::RunResult run = engine.Run(fleet);

  FleetResult result;
  result.probes = run.total_probes;
  result.sensors = fleet.size();
  result.alerted = static_cast<double>(fleet.AlertedCount());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    result.identified +=
        static_cast<double>(fleet.sensor(static_cast<int>(i)).probe_count());
    result.unidentified += static_cast<double>(
        fleet.sensor(static_cast<int>(i)).unidentified_probes());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Ablation", "active vs passive darknet sensors");

  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(30'000 * scale) + 1000;
  config.nonempty_slash16s = 500;
  config.slash8_clusters = 25;
  config.seed = 0x5E0;
  core::Scenario scenario = builder.BuildClustered(config);
  std::printf("  %d trials per (threat, fleet) cell\n", trials);

  const worms::CodeRed2Worm tcp_worm;
  const worms::SlammerWorm udp_worm;
  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  std::printf("  %-12s %-8s %-18s %-18s %s\n", "threat", "fleet",
              "identified", "unidentified", "alerted");
  for (const auto* worm :
       std::initializer_list<const sim::Worm*>{&tcp_worm, &udp_worm}) {
    for (const bool active : {true, false}) {
      sim::StudyOptions options;
      options.master_seed = 0x5E0 + (active ? 1 : 0);
      options.label =
          std::string{worm->name()} + (active ? "/active" : "/passive");
      auto study = sim::RunStudy(
          options, trials, [&](int /*trial*/, std::uint64_t seed) {
            return RunFleetTrial(scenario, *worm, active, seed);
          });
      std::vector<double> identified;
      std::vector<double> unidentified;
      std::vector<double> alerted;
      std::size_t sensors = 0;
      for (const FleetResult& trial : study.trials) {
        total_probes += trial.probes;
        identified.push_back(trial.identified);
        unidentified.push_back(trial.unidentified);
        alerted.push_back(trial.alerted);
        sensors = trial.sensors;
      }
      overall.Merge(study.telemetry);
      std::printf("  %-12s %-8s %-18s %-18s %s/%zu\n",
                  std::string{worm->name()}.c_str(),
                  active ? "active" : "passive",
                  bench::MeanStd(sim::Summarize(identified), "%.0f").c_str(),
                  bench::MeanStd(sim::Summarize(unidentified), "%.0f").c_str(),
                  bench::MeanStd(sim::Summarize(alerted), "%.0f").c_str(),
                  sensors);
    }
  }
  bench::Measured(
      "a passive fleet is structurally blind to TCP threats: it receives "
      "the same packets but zero identifiable payloads, so payload-based "
      "alerting never fires — the paper's rationale for IMS's active "
      "SYN-ACK responder.");
  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "ablation_sensor_mode", &overall);
  bench::DumpTimeline(timeline_out);
  return 0;
}
