// Ablation — active (SYN-ACK responding) vs passive darknet sensors.
//
// The IMS sensors behind the paper's data "actively responded to TCP SYN
// packets with a SYN-ACK packet to elicit the first data payload"
// (Section 4.1).  This bench quantifies why: against a TCP worm
// (CodeRedII), a passive fleet sees the packets but can never *identify*
// the threat, so payload-based alerting never fires; against a UDP worm
// (Slammer) the two fleets are equivalent.
#include <cstdio>

#include "bench_util.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "telescope/telescope.h"
#include "topology/reachability.h"
#include "worms/codered2.h"
#include "worms/slammer.h"

using namespace hotspots;

namespace {

struct FleetResult {
  std::uint64_t identified = 0;
  std::uint64_t unidentified = 0;
  std::size_t alerted = 0;
  std::size_t sensors = 0;
};

FleetResult RunFleet(core::Scenario& scenario, const sim::Worm& worm,
                     bool active_responder) {
  scenario.population.ResetAllToVulnerable();

  telescope::SensorOptions options;
  options.track_unique_sources = false;
  options.track_per_slash24 = false;
  options.alert_threshold = 5;
  options.active_responder = active_responder;
  telescope::Telescope fleet{options};
  // One sensor per populated /16 — the Figure-5b deployment.
  prng::Xoshiro256 rng{11};
  for (const auto& prefix : core::PlaceSensorPerCluster16(scenario, rng)) {
    fleet.AddSensor(prefix.ToString(), prefix);
  }
  fleet.Build();
  fleet.SetThreatRequiresHandshake(worm.requires_handshake());

  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  sim::EngineConfig config;
  config.scan_rate = 10.0;
  config.end_time = 600.0;
  config.stop_at_infected_fraction = 0.9;
  sim::Engine engine{scenario.population, worm, reachability, nullptr, config};
  engine.SeedRandomInfections(25);
  engine.Run(fleet);

  FleetResult result;
  result.sensors = fleet.size();
  result.alerted = fleet.AlertedCount();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    result.identified += fleet.sensor(static_cast<int>(i)).probe_count();
    result.unidentified +=
        fleet.sensor(static_cast<int>(i)).unidentified_probes();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Ablation", "active vs passive darknet sensors");

  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(30'000 * scale) + 1000;
  config.nonempty_slash16s = 500;
  config.slash8_clusters = 25;
  config.seed = 0x5E0;
  core::Scenario scenario = builder.BuildClustered(config);

  const worms::CodeRed2Worm tcp_worm;
  const worms::SlammerWorm udp_worm;
  std::printf("  %-12s %-8s %-14s %-14s %s\n", "threat", "fleet",
              "identified", "unidentified", "alerted");
  for (const auto* worm :
       std::initializer_list<const sim::Worm*>{&tcp_worm, &udp_worm}) {
    for (const bool active : {true, false}) {
      const FleetResult result = RunFleet(scenario, *worm, active);
      std::printf("  %-12s %-8s %-14llu %-14llu %zu/%zu\n",
                  std::string{worm->name()}.c_str(),
                  active ? "active" : "passive",
                  static_cast<unsigned long long>(result.identified),
                  static_cast<unsigned long long>(result.unidentified),
                  result.alerted, result.sensors);
    }
  }
  bench::Measured(
      "a passive fleet is structurally blind to TCP threats: it receives "
      "the same packets but zero identifiable payloads, so payload-based "
      "alerting never fires — the paper's rationale for IMS's active "
      "SYN-ACK responder.");
  return 0;
}
