// Figure 5(c) — "Effect of sensor placements on alert generation" for a
// CodeRedII-type worm with 15 % of the vulnerable population behind
// 192.168/16 NATs.
//
// Three sensor placements, as in Section 5.3:
//   run 1: 10,000 /24 sensors placed uniformly at random;
//   run 2: 10,000 /24 sensors placed inside the top-20 /8s by vulnerable
//          population (collaborative pre-knowledge);
//   run 3: 255 sensors, one per /16 of 192.0.0.0/8 (skipping 192.168/16) —
//          exploiting the empirically measured NAT hotspot.
// The paper's milestones: run 1 needs >11 minutes for even 10 % of sensors
// (by which time >50 % of hosts are infected); run 2 alerts faster but only
// ~20 % of sensors by 20 % infection; run 3 — every sensor alerts before
// the worm reaches 20 % of the vulnerable population.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/containment.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "telescope/ims.h"
#include "worms/codered2.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Figure 5c", "sensor placement vs NAT-driven hotspots");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.nat_fraction = 0.15;
  config.nat_site_mode = core::NatSiteMode::kSharedSite;
  config.seed = 0xF16C;
  core::Scenario scenario = builder.BuildClustered(config);
  std::printf("population: %u public + %u NATed hosts (15%% behind "
              "192.168/16, as the paper estimated from Figure 4a)\n",
              scenario.public_hosts, scenario.natted_hosts);

  prng::Xoshiro256 rng{0x9A7Cu};
  const int fleet = static_cast<int>(10'000 * scale) + 100;
  struct Placement {
    const char* name;
    std::vector<net::Prefix> sensors;
  };
  std::vector<Placement> placements;
  placements.push_back({"randomly placed", core::PlaceRandomSensors(
                                               scenario, fleet, rng)});
  placements.push_back({"top-20 /8s", core::PlaceSensorsInTopSlash8s(
                                          scenario, fleet, 20, rng)});
  placements.push_back({"192/8 (one per /16)",
                        core::PlaceSensorsAcross192(rng)});

  const worms::CodeRed2Worm worm;
  std::vector<core::DetectionOutcome> outcomes;
  for (const Placement& placement : placements) {
    core::DetectionStudyConfig study;
    study.engine.scan_rate = 10.0;
    study.engine.end_time = 1500.0;
    study.engine.sample_interval = 15.0;
    study.engine.stop_at_infected_fraction = 0.90;
    study.engine.seed = 0xCC;
    study.alert_threshold = 5;
    study.seed_infections = 25;
    outcomes.push_back(core::RunDetectionStudy(scenario, worm,
                                               placement.sensors, study));
    std::printf("  placed %zu sensors (%s)\n", placement.sensors.size(),
                placement.name);
  }

  bench::Section("alert fraction (and infected fraction) over time");
  std::printf("  %-8s %-10s", "t(s)", "infected");
  for (const Placement& placement : placements) {
    std::printf(" %-20s", placement.name);
  }
  std::printf("\n");
  for (double t = 0; t <= 1500.0; t += 75.0) {
    std::printf("  %-8.0f", t);
    double infected = 0.0;
    for (const auto& point : outcomes[0].curve) {
      if (point.time > t) break;
      infected = point.infected_fraction;
    }
    std::printf(" %-10.4f", infected);
    for (const auto& outcome : outcomes) {
      double fraction = 0.0;
      for (const auto& point : outcome.curve) {
        if (point.time > t) break;
        fraction = point.alerted_fraction;
      }
      std::printf(" %-20.4f", fraction);
    }
    std::printf("\n");
  }

  bench::Section("paper milestones");
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& outcome = outcomes[i];
    // Time for 10% of sensors to alert.
    double t10 = -1.0;
    for (const auto& point : outcome.curve) {
      if (point.alerted_fraction >= 0.10) {
        t10 = point.time;
        break;
      }
    }
    const std::string t10_text =
        t10 < 0 ? "never" : std::to_string(static_cast<int>(t10)) + "s";
    std::printf("  %-22s: 10%% of sensors alerted at %s; alerted fraction at "
                "20%% infection: %.1f%%; at 50%% infection: %.1f%%\n",
                placements[i].name, t10_text.c_str(),
                100.0 * outcome.AlertedFractionWhenInfected(0.20),
                100.0 * outcome.AlertedFractionWhenInfected(0.50));
  }
  bench::PaperSays("run 1: >11 min for 10%% of sensors, worm already >50%% "
                   "done; run 2: faster, but only 20%% of sensors at 20%% "
                   "infection; run 3: every sensor alerts before 20%% "
                   "infection — a single well-placed local detector beats "
                   "the global fleet.");

  bench::Section("containment: infected fraction when a global response "
                 "lands (quorum + 60 s deployment)");
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto containment =
        core::AnalyzeContainment(outcomes[i], {0.05, 0.25, 0.50}, 60.0);
    std::printf("  %-22s:", placements[i].name);
    for (const auto& point : containment) {
      if (point.detection_time) {
        std::printf("  q=%.0f%%: %.0f%% infected", 100 * point.quorum_fraction,
                    100 * point.infected_at_response);
      } else {
        std::printf("  q=%.0f%%: NEVER (%.0f%% infected)",
                    100 * point.quorum_fraction,
                    100 * point.infected_at_response);
      }
    }
    std::printf("\n");
  }
  bench::PaperSays("'After 11 minutes the worm has already infected more "
                   "than 50%% of the vulnerable population making global "
                   "containment difficult or impossible.'");
  return 0;
}
