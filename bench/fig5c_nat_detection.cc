// Figure 5(c) — "Effect of sensor placements on alert generation" for a
// CodeRedII-type worm with 15 % of the vulnerable population behind
// 192.168/16 NATs.
//
// Three sensor placements, as in Section 5.3:
//   run 1: 10,000 /24 sensors placed uniformly at random;
//   run 2: 10,000 /24 sensors placed inside the top-20 /8s by vulnerable
//          population (collaborative pre-knowledge);
//   run 3: 255 sensors, one per /16 of 192.0.0.0/8 (skipping 192.168/16) —
//          exploiting the empirically measured NAT hotspot.
// Each placement is evaluated over HOTSPOTS_TRIALS independent outbreaks
// (parallel across HOTSPOTS_THREADS) and curves/milestones are averaged.
// The paper's milestones: run 1 needs >11 minutes for even 10 % of sensors
// (by which time >50 % of hosts are infected); run 2 alerts faster but only
// ~20 % of sensors by 20 % infection; run 3 — every sensor alerts before
// the worm reaches 20 % of the vulnerable population.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/containment.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "telescope/ims.h"
#include "worms/codered2.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Figure 5c", "sensor placement vs NAT-driven hotspots");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.nat_fraction = 0.15;
  config.nat_site_mode = core::NatSiteMode::kSharedSite;
  config.seed = 0xF16C;
  core::Scenario scenario = builder.BuildClustered(config);
  std::printf("population: %u public + %u NATed hosts (15%% behind "
              "192.168/16, as the paper estimated from Figure 4a); %d "
              "trials per placement\n",
              scenario.public_hosts, scenario.natted_hosts, trials);

  prng::Xoshiro256 rng{0x9A7Cu};
  const int fleet = static_cast<int>(10'000 * scale) + 100;
  struct Placement {
    const char* name;
    std::vector<net::Prefix> sensors;
  };
  std::vector<Placement> placements;
  placements.push_back({"randomly placed", core::PlaceRandomSensors(
                                               scenario, fleet, rng)});
  placements.push_back({"top-20 /8s", core::PlaceSensorsInTopSlash8s(
                                          scenario, fleet, 20, rng)});
  placements.push_back({"192/8 (one per /16)",
                        core::PlaceSensorsAcross192(rng)});

  const worms::CodeRed2Worm worm;
  std::vector<core::MonteCarloDetectionSummary> outcomes;
  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  for (const Placement& placement : placements) {
    core::MonteCarloStudyConfig mc;
    mc.trials = trials;
    mc.master_seed = 0xCC;
    mc.label = placement.name;
    mc.study.engine.scan_rate = 10.0;
    mc.study.engine.end_time = 1500.0;
    mc.study.engine.sample_interval = 15.0;
    mc.study.engine.stop_at_infected_fraction = 0.90;
    mc.study.alert_threshold = 5;
    mc.study.seed_infections = 25;
    outcomes.push_back(core::RunDetectionStudyMonteCarlo(
        scenario, worm, placement.sensors, mc));
    total_probes += outcomes.back().total_probes;
    overall.Merge(outcomes.back().telemetry);
    std::printf("  placed %zu sensors (%s)\n", placement.sensors.size(),
                placement.name);
  }

  bench::Section("mean alert fraction (and infected fraction) over time");
  std::printf("  %-8s %-10s", "t(s)", "infected");
  for (const Placement& placement : placements) {
    std::printf(" %-20s", placement.name);
  }
  std::printf("\n");
  for (double t = 0; t <= 1500.0; t += 75.0) {
    std::printf("  %-8.0f", t);
    std::printf(" %-10.4f", outcomes[0].MeanCurveAt(t).infected_fraction);
    for (const auto& outcome : outcomes) {
      std::printf(" %-20.4f", outcome.MeanCurveAt(t).alerted_fraction);
    }
    std::printf("\n");
  }

  bench::Section("paper milestones (mean across trials)");
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& outcome = outcomes[i];
    // Mean time for 10% of sensors to alert (staircase over mean curve).
    double t10 = -1.0;
    for (double t = 0; t <= 1500.0; t += 15.0) {
      if (outcome.MeanCurveAt(t).alerted_fraction >= 0.10) {
        t10 = t;
        break;
      }
    }
    const std::string t10_text =
        t10 < 0 ? "never" : std::to_string(static_cast<int>(t10)) + "s";
    std::vector<double> at20;
    std::vector<double> at50;
    for (const auto& trial : outcome.trials) {
      at20.push_back(trial.AlertedFractionWhenInfected(0.20));
      at50.push_back(trial.AlertedFractionWhenInfected(0.50));
    }
    std::printf("  %-22s: 10%% of sensors alerted at %s; alerted fraction at "
                "20%% infection: %.1f%%; at 50%% infection: %.1f%%\n",
                placements[i].name, t10_text.c_str(),
                100.0 * sim::Summarize(at20).mean,
                100.0 * sim::Summarize(at50).mean);
  }
  bench::PaperSays("run 1: >11 min for 10%% of sensors, worm already >50%% "
                   "done; run 2: faster, but only 20%% of sensors at 20%% "
                   "infection; run 3: every sensor alerts before 20%% "
                   "infection — a single well-placed local detector beats "
                   "the global fleet.");

  bench::Section("containment: mean infected fraction when a global response "
                 "lands (quorum + 60 s deployment)");
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const std::vector<double> quorums = {0.05, 0.25, 0.50};
    // Per-quorum averages across trials; a trial whose quorum never fires
    // still reports the infected fraction when its (never-deployed)
    // response would land, exactly as the serial bench did.
    std::vector<double> infected_sum(quorums.size(), 0.0);
    std::vector<int> never_count(quorums.size(), 0);
    for (const auto& trial : outcomes[i].trials) {
      const auto containment = core::AnalyzeContainment(trial, quorums, 60.0);
      for (std::size_t q = 0; q < containment.size(); ++q) {
        infected_sum[q] += containment[q].infected_at_response;
        if (!containment[q].detection_time) ++never_count[q];
      }
    }
    std::printf("  %-22s:", placements[i].name);
    const auto trial_count = static_cast<double>(outcomes[i].trials.size());
    for (std::size_t q = 0; q < quorums.size(); ++q) {
      if (never_count[q] == 0) {
        std::printf("  q=%.0f%%: %.0f%% infected", 100 * quorums[q],
                    100 * infected_sum[q] / trial_count);
      } else {
        std::printf("  q=%.0f%%: NEVER in %d/%d trials (%.0f%% infected)",
                    100 * quorums[q], never_count[q],
                    static_cast<int>(trial_count),
                    100 * infected_sum[q] / trial_count);
      }
    }
    std::printf("\n");
  }
  bench::PaperSays("'After 11 minutes the worm has already infected more "
                   "than 50%% of the vulnerable population making global "
                   "containment difficult or impossible.'");
  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "fig5c_nat_detection", &overall);
  bench::DumpTimeline(timeline_out);
  return 0;
}
