// Shared helpers for the experiment benches: consistent headers, paper
// reference callouts, and simple table/series printing.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hotspots::bench {

inline void Title(const char* id, const char* what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==========================================================\n");
}

inline void Section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

/// Prints a "what the paper reports" callout so every bench output can be
/// read against the original.
inline void PaperSays(const char* fmt, ...) {
  std::printf("  [paper] ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void Measured(const char* fmt, ...) {
  std::printf("  [ours ] ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Scale factor from argv[1] or HOTSPOTS_SCALE (0 < s ≤ 1); scales the
/// expensive experiments down for quick runs.  Defaults to 1.0 (full paper
/// scale).
inline double ScaleArg(int argc, char** argv, double fallback = 1.0) {
  double scale = fallback;
  if (const char* env = std::getenv("HOTSPOTS_SCALE")) {
    scale = std::atof(env);
  }
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "scale must be in (0,1]; got %f\n", scale);
    std::exit(2);
  }
  return scale;
}

}  // namespace hotspots::bench
