// Shared helpers for the experiment benches: consistent headers, paper
// reference callouts, simple table/series printing, and the scale/trial
// knobs plus Monte-Carlo throughput reporting.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "sim/study.h"

namespace hotspots::bench {

inline void Title(const char* id, const char* what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==========================================================\n");
}

inline void Section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

/// Prints a "what the paper reports" callout so every bench output can be
/// read against the original.
inline void PaperSays(const char* fmt, ...) {
  std::printf("  [paper] ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void Measured(const char* fmt, ...) {
  std::printf("  [ours ] ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Strict double parse: the whole string must be a number.  Unlike atof —
/// which silently returns 0.0 for garbage — a failure reports the
/// offending text.
[[nodiscard]] inline std::optional<double> ParseDouble(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return std::nullopt;
  return value;
}

/// Scale factor from argv[1] or HOTSPOTS_SCALE (0 < s ≤ 1); scales the
/// expensive experiments down for quick runs.  Defaults to 1.0 (full paper
/// scale).
inline double ScaleArg(int argc, char** argv, double fallback = 1.0) {
  double scale = fallback;
  const char* origin = "default";
  const char* text = nullptr;
  if (const char* env = std::getenv("HOTSPOTS_SCALE")) {
    origin = "HOTSPOTS_SCALE";
    text = env;
  }
  if (argc > 1) {
    origin = "argv[1]";
    text = argv[1];
  }
  if (text != nullptr) {
    const std::optional<double> parsed = ParseDouble(text);
    if (!parsed) {
      std::fprintf(stderr, "%s: scale must be a number in (0,1]; got \"%s\"\n",
                   origin, text);
      std::exit(2);
    }
    scale = *parsed;
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "%s: scale must be in (0,1]; got %f\n", origin,
                 scale);
    std::exit(2);
  }
  return scale;
}

/// Monte-Carlo trial count from HOTSPOTS_TRIALS (≥ 1); `fallback` when
/// unset.  The statistical benches use this to trade runtime for tighter
/// confidence intervals.
inline int TrialsArg(int fallback) {
  const char* env = std::getenv("HOTSPOTS_TRIALS");
  if (env == nullptr) return fallback;
  const std::optional<double> parsed = ParseDouble(env);
  const int trials = parsed ? static_cast<int>(*parsed) : 0;
  if (!parsed || trials < 1 || static_cast<double>(trials) != *parsed) {
    std::fprintf(stderr,
                 "HOTSPOTS_TRIALS: trial count must be a positive integer; "
                 "got \"%s\"\n",
                 env);
    std::exit(2);
  }
  return trials;
}

/// Prints a study's throughput instrumentation: wall clock, realized
/// parallel speedup, per-trial cost and probe rate.
inline void PrintStudyThroughput(const sim::StudyTelemetry& telemetry,
                                 std::uint64_t total_probes) {
  const double serial = telemetry.TotalTrialSeconds();
  const double speedup =
      telemetry.wall_seconds > 0.0 ? serial / telemetry.wall_seconds : 0.0;
  std::printf(
      "  [mc   ] %d trials on %d threads: %.2fs wall (serial-equivalent "
      "%.2fs, speedup %.2fx, peak %d concurrent), %.3fs/trial, %.2fM "
      "probes/s\n",
      telemetry.trials, telemetry.threads_used, telemetry.wall_seconds,
      serial, speedup, telemetry.peak_concurrent_trials,
      telemetry.MeanTrialSeconds(),
      telemetry.wall_seconds > 0.0
          ? static_cast<double>(total_probes) / telemetry.wall_seconds / 1e6
          : 0.0);
}

/// Formats mean ± stddev compactly; `scale` converts units (100 → percent).
inline std::string MeanStd(const sim::SummaryStats& stats, const char* fmt,
                           double scale = 1.0) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, fmt, scale * stats.mean);
  std::string text{buffer};
  std::snprintf(buffer, sizeof buffer, fmt, scale * stats.stddev);
  text += "±";
  text += buffer;
  return text;
}

}  // namespace hotspots::bench
