// Shared helpers for the experiment benches: consistent headers, paper
// reference callouts, simple table/series printing, the scale/trial knobs
// plus Monte-Carlo throughput reporting, and the uniform --metrics-out
// sidecar (a JSON dump of the global obs registry + study telemetry) every
// bench and example supports.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/stage_timer.h"
#include "obs/timeline_export.h"
#include "obs/trace_span.h"
#include "sim/study.h"

namespace hotspots::bench {

inline void Title(const char* id, const char* what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==========================================================\n");
}

inline void Section(const char* name) {
  std::printf("\n--- %s ---\n", name);
}

/// Prints a "what the paper reports" callout so every bench output can be
/// read against the original.
inline void PaperSays(const char* fmt, ...) {
  std::printf("  [paper] ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void Measured(const char* fmt, ...) {
  std::printf("  [ours ] ");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Strict double parse: the whole string must be a number.  Unlike atof —
/// which silently returns 0.0 for garbage — a failure reports the
/// offending text.
[[nodiscard]] inline std::optional<double> ParseDouble(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return std::nullopt;
  return value;
}

/// Extracts `<flag> VALUE` from argv, compacting the remaining arguments
/// in place so positional parsing (ScaleArg) still sees a clean argv.
/// Returns the value, or "" when the flag is absent.  Call before any
/// positional argument parsing.
[[nodiscard]] inline std::string StringFlagArg(int& argc, char** argv,
                                               const char* flag) {
  std::string value;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      value = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return value;
}

/// Extracts `--metrics-out PATH`; "" when absent.
[[nodiscard]] inline std::string MetricsOutArg(int& argc, char** argv) {
  return StringFlagArg(argc, argv, "--metrics-out");
}

/// Extracts `--trace-out PATH`; "" means the flag was absent (benches skip
/// their capture step entirely — the disabled path adds no observer and no
/// work).  Call before positional parsing.
[[nodiscard]] inline std::string TraceOutArg(int& argc, char** argv) {
  return StringFlagArg(argc, argv, "--trace-out");
}

/// Extracts `--faults SPEC` (a `hotspots.faults.v1` text spec, see
/// fault/schedule.h); "" when absent.
[[nodiscard]] inline std::string FaultSpecArg(int& argc, char** argv) {
  return StringFlagArg(argc, argv, "--faults");
}

/// Extracts `--timeline-out PATH`; "" when absent.  A non-empty path
/// force-enables span tracing (equivalent to HOTSPOTS_OBS_TRACE=1) — the
/// explicit opt-in keeps the env-gated disabled path untouched otherwise.
/// Call before positional parsing.
[[nodiscard]] inline std::string TimelineOutArg(int& argc, char** argv) {
  const std::string path = StringFlagArg(argc, argv, "--timeline-out");
  if (!path.empty()) obs::ForceTracing();
  return path;
}

/// Extracts `--timeseries-out PATH`; "" when absent.  Benches that get a
/// path run a MetricsSampler over the whole bench (see TimeseriesSidecar).
[[nodiscard]] inline std::string TimeseriesOutArg(int& argc, char** argv) {
  return StringFlagArg(argc, argv, "--timeseries-out");
}

/// Writes the drained span timeline as a Chrome trace-event sidecar
/// (chrome://tracing / ui.perfetto.dev / tools/perf_report).  No-op when
/// `path` is empty, so benches call it unconditionally at exit.
inline void DumpTimeline(const std::string& path) {
  if (path.empty()) return;
  const obs::Timeline timeline = obs::SpanCollector::Global().TakeTimeline();
  if (!obs::WriteTimelineFile(path, timeline)) std::exit(1);
  std::printf("timeline sidecar written to %s (%zu spans, %llu dropped)\n",
              path.c_str(), timeline.spans.size(),
              static_cast<unsigned long long>(timeline.dropped));
}

/// Whole-bench metrics sampler: started on construction when `path` is
/// non-empty, stopped and written by Dump() (or the destructor).  Samples
/// the global registry every 25 ms into a hotspots.timeseries.v1 sidecar.
class TimeseriesSidecar {
 public:
  explicit TimeseriesSidecar(std::string path) : path_(std::move(path)) {
    if (path_.empty()) return;
    sampler_.emplace(obs::Registry::Global(), obs::SamplerOptions{25});
    sampler_->Start();
  }

  ~TimeseriesSidecar() { Dump(); }

  TimeseriesSidecar(const TimeseriesSidecar&) = delete;
  TimeseriesSidecar& operator=(const TimeseriesSidecar&) = delete;

  /// Stops the sampler and writes the sidecar; idempotent.
  void Dump() {
    if (!sampler_ || dumped_) return;
    dumped_ = true;
    sampler_->Stop();
    if (!sampler_->WriteFile(path_)) std::exit(1);
    std::printf("timeseries sidecar written to %s (%zu samples)\n",
                path_.c_str(), sampler_->sample_count());
  }

 private:
  std::string path_;
  std::optional<obs::MetricsSampler> sampler_;
  bool dumped_ = false;
};

/// Writes the metrics sidecar (EXPERIMENTS.md documents the schema): the
/// global registry snapshot plus, when given, the bench's merged study
/// telemetry with per-sweep-point segments.  No-op when `path` is empty,
/// so benches call it unconditionally at exit.
inline void DumpMetrics(const std::string& path, const char* bench_name,
                        const sim::StudyTelemetry* telemetry = nullptr) {
  if (path.empty()) return;
  const obs::Snapshot snapshot = obs::Registry::Global().TakeSnapshot();
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", obs::kMetricsSchema);
  writer.KV("bench", bench_name);
  writer.KV("timers_enabled", obs::StageTimersEnabled());
  obs::WriteSnapshotSections(snapshot, writer);
  if (telemetry != nullptr) {
    const auto write_stats = [&](const sim::SummaryStats& stats) {
      writer.BeginObject();
      writer.KV("mean", stats.mean);
      for (const auto& [quantile, value] : stats.quantiles) {
        writer.KV(quantile == 0.5 ? "p50" : "p95", value);
      }
      writer.KV("min", stats.min);
      writer.KV("max", stats.max);
      writer.EndObject();
    };
    writer.Key("study").BeginObject();
    writer.KV("trials", telemetry->trials);
    writer.KV("threads", telemetry->threads_used);
    writer.KV("peak_concurrent_trials", telemetry->peak_concurrent_trials);
    writer.KV("wall_seconds", telemetry->wall_seconds);
    writer.KV("serial_seconds", telemetry->TotalTrialSeconds());
    writer.KV("retries", telemetry->retries);
    writer.KV("quarantined_trials", telemetry->quarantined_trials);
    writer.Key("trial_seconds");
    write_stats(telemetry->TrialLatencyStats());
    writer.Key("queue_wait_seconds");
    write_stats(telemetry->QueueWaitStats());
    writer.Key("segments").BeginArray();
    for (const sim::StudySegment& segment : telemetry->segments) {
      writer.BeginObject();
      writer.KV("label", segment.label);
      writer.KV("trial_offset", segment.trial_offset);
      writer.KV("trials", segment.trials);
      writer.KV("lost_trials", segment.lost_trials);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndObject();
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "--metrics-out: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const std::string& json = writer.str();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("metrics sidecar written to %s\n", path.c_str());
}

/// Reads a whole file; empty string if it does not exist.
[[nodiscard]] inline std::string ReadFileOrEmpty(const std::string& path) {
  std::string contents;
  if (FILE* in = std::fopen(path.c_str(), "rb")) {
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(in);
  }
  return contents;
}

/// Appends `entry` (a JSON object, no trailing newline) to the JSON array
/// in `path`, creating the file if needed — the results/BENCH_*.json
/// sidecar idiom shared by the recording benches.
inline void AppendJsonEntry(const std::string& path, const std::string& entry,
                            const char* bench_name) {
  std::string contents = ReadFileOrEmpty(path);
  // Strip everything after the final closing bracket (and the bracket).
  const std::size_t end = contents.rfind(']');
  std::string out;
  if (end == std::string::npos) {
    out = "[\n" + entry + "\n]\n";
  } else {
    out = contents.substr(0, end);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += ",\n" + entry + "\n]\n";
  }
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench_name, path.c_str());
    std::exit(1);
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
  std::printf("\nappended entry to %s\n", path.c_str());
}

/// Scale factor from argv[1] or HOTSPOTS_SCALE (0 < s ≤ 1); scales the
/// expensive experiments down for quick runs.  Defaults to 1.0 (full paper
/// scale).
inline double ScaleArg(int argc, char** argv, double fallback = 1.0) {
  double scale = fallback;
  const char* origin = "default";
  const char* text = nullptr;
  if (const char* env = std::getenv("HOTSPOTS_SCALE")) {
    origin = "HOTSPOTS_SCALE";
    text = env;
  }
  if (argc > 1) {
    origin = "argv[1]";
    text = argv[1];
  }
  if (text != nullptr) {
    const std::optional<double> parsed = ParseDouble(text);
    if (!parsed) {
      std::fprintf(stderr, "%s: scale must be a number in (0,1]; got \"%s\"\n",
                   origin, text);
      std::exit(2);
    }
    scale = *parsed;
  }
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "%s: scale must be in (0,1]; got %f\n", origin,
                 scale);
    std::exit(2);
  }
  return scale;
}

/// Monte-Carlo trial count from HOTSPOTS_TRIALS (≥ 1); `fallback` when
/// unset.  The statistical benches use this to trade runtime for tighter
/// confidence intervals.
inline int TrialsArg(int fallback) {
  const char* env = std::getenv("HOTSPOTS_TRIALS");
  if (env == nullptr) return fallback;
  const std::optional<double> parsed = ParseDouble(env);
  const int trials = parsed ? static_cast<int>(*parsed) : 0;
  if (!parsed || trials < 1 || static_cast<double>(trials) != *parsed) {
    std::fprintf(stderr,
                 "HOTSPOTS_TRIALS: trial count must be a positive integer; "
                 "got \"%s\"\n",
                 env);
    std::exit(2);
  }
  return trials;
}

/// Prints a study's throughput instrumentation: wall clock, realized
/// parallel speedup, per-trial cost and probe rate.
inline void PrintStudyThroughput(const sim::StudyTelemetry& telemetry,
                                 std::uint64_t total_probes) {
  const double serial = telemetry.TotalTrialSeconds();
  const double speedup =
      telemetry.wall_seconds > 0.0 ? serial / telemetry.wall_seconds : 0.0;
  std::printf(
      "  [mc   ] %d trials on %d threads: %.2fs wall (serial-equivalent "
      "%.2fs, speedup %.2fx, peak %d concurrent), %.3fs/trial, %.2fM "
      "probes/s\n",
      telemetry.trials, telemetry.threads_used, telemetry.wall_seconds,
      serial, speedup, telemetry.peak_concurrent_trials,
      telemetry.MeanTrialSeconds(),
      telemetry.wall_seconds > 0.0
          ? static_cast<double>(total_probes) / telemetry.wall_seconds / 1e6
          : 0.0);
  const sim::SummaryStats latency = telemetry.TrialLatencyStats();
  const sim::SummaryStats queue_wait = telemetry.QueueWaitStats();
  if (latency.count > 0 && latency.quantiles.size() == 2) {
    std::printf(
        "  [mc   ] trial latency p50 %.3fs, p95 %.3fs, max %.3fs; queue "
        "wait p50 %.3fs, max %.3fs\n",
        latency.quantiles[0].second, latency.quantiles[1].second, latency.max,
        queue_wait.quantiles.empty() ? 0.0 : queue_wait.quantiles[0].second,
        queue_wait.max);
  }
}

/// Formats mean ± stddev compactly; `scale` converts units (100 → percent).
inline std::string MeanStd(const sim::SummaryStats& stats, const char* fmt,
                           double scale = 1.0) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, fmt, scale * stats.mean);
  std::string text{buffer};
  std::snprintf(buffer, sizeof buffer, fmt, scale * stats.stddev);
  text += "±";
  text += buffer;
  return text;
}

}  // namespace hotspots::bench
