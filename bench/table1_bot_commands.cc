// Table 1 — "Botnet scan commands captured on a live /15 academic network."
//
// Regenerates the table from the botnet substrate: a controller issues
// propagation commands over an IRC-style channel for a simulated month; the
// passive signature capture (Agobot/Phatbot, rbot/sdbot, Ghost-Bot
// signatures) extracts them from the chatter; we print the captured command
// log and the hit-list scope each command implies.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "botnet/capture.h"
#include "botnet/controller.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  bench::Title("Table 1", "botnet scan commands captured on a live network");

  // ~11 bots over a month (Section 4.2.1); each bot's controller issues a
  // couple of propagation commands amid normal channel noise.
  constexpr double kMonthSeconds = 30.0 * 24 * 3600;
  botnet::BotController controller{"#0wned", botnet::PaperCommandRepertoire(),
                                   0xB07};
  const auto traffic = controller.EmitTraffic(kMonthSeconds,
                                              /*commands=*/16,
                                              /*chatter_lines=*/600);
  botnet::SignatureCapture capture;
  capture.FeedAll(traffic);

  bench::Section("captured bot propagation commands");
  std::printf("  %-36s %-10s %s\n", "command", "dialect", "hit-list scope");
  for (const auto& entry : capture.log()) {
    const auto prefix = entry.command.TargetPrefix();
    std::printf("  %-36s %-10s %s\n", entry.command.raw.c_str(),
                std::string{botnet::ToString(entry.command.dialect)}.c_str(),
                prefix.length() == 0 ? "entire IPv4 space"
                                     : prefix.ToString().c_str());
  }

  bench::Section("summary");
  std::map<std::string, int> by_module;
  int restricted = 0;
  for (const auto& entry : capture.log()) {
    ++by_module[entry.command.module];
    if (entry.command.TargetPrefix().length() > 0) ++restricted;
  }
  std::printf("  lines scanned: %llu, commands extracted: %zu\n",
              static_cast<unsigned long long>(capture.lines_scanned()),
              capture.log().size());
  std::printf("  exploit modules:");
  for (const auto& [module, count] : by_module) {
    std::printf(" %s(%d)", module.c_str(), count);
  }
  std::printf("\n  commands restricted to a pinned prefix: %d / %zu\n",
              restricted, capture.log().size());

  bench::PaperSays(
      "~11 bots in one month; commands like 'ipscan 194.s.s.s dcom2 -s' "
      "restrict propagation to specific /8s (194, 192, 128) — hit-lists in "
      "the wild.");
  bench::Measured(
      "the regenerated capture shows the same mixture: dcom2-dominant, a "
      "minority of commands pinned to /8 hit-lists, rest space-wide.");
  bench::DumpMetrics(metrics_out, "table1_bot_commands");
  bench::DumpTimeline(timeline_out);
  return 0;
}
