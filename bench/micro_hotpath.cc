// Hot-path microbenchmark: times each stage of the per-probe pipeline —
// targeting (HostScanner::NextTarget), reachability (Reachability::Decide),
// telescope observation (Telescope::Observe), victim lookup
// (Population::FindPublic) — plus the end-to-end engine loop at Figure-5
// scale, and appends a machine-readable entry to results/BENCH_hotpath.json.
//
// The end-to-end run is fully deterministic (fixed seeds) and reports a
// FNV-1a fingerprint over the RunResult series, delivery counts, and every
// sensor's histogram/alert state.  Comparing entries recorded before and
// after a hot-path change therefore checks both speed (probes_per_sec) and
// behaviour (the fingerprints must be bit-identical).
//
// Usage: micro_hotpath [scale] [--label NAME] [--out FILE] [gate flags]
//   scale    population scale in (0,1], default 1.0 (fig5a scale)
//   --label  entry label, e.g. "before" / "after" (default "run")
//   --out    JSON file to append to (default results/BENCH_hotpath.json)
//   --metrics-out FILE      obs registry sidecar (see bench_util.h)
//   --shards N              engine worker shards (0 = HOTSPOTS_SHARDS env,
//                           then 1).  The fingerprint is shard-count
//                           invariant by design, so gating a --shards 8 run
//                           against a --shards 1 baseline is the standing
//                           determinism check for the sharded engine.
//   --faults SPEC           attach a `hotspots.faults.v1` schedule (see
//                           fault/schedule.h): delivery faults go through
//                           the engine's sharded fault hook, outage windows
//                           onto the sensor fleet.  Faulted fingerprints
//                           are shard-count invariant too (per-scanner
//                           fault streams), so the same 1-vs-8 gate works
//                           with a schedule active.
//
// After the timed end-to-end run, the identical run repeats once with
// stage timers forced on to produce a per-phase breakdown — generate
// (parallel-phase wall), fault + prefold (summed per-shard work, overlaps
// generate), commit (serial merge wall) — reported as a "phases" object
// with serial_fraction = commit / run.  The timers-on rerun must reproduce
// the timed run's fingerprint exactly (timers observe, never steer).
//
// Gate mode (CI overhead regression check) — compares this run against a
// previously recorded entry and exits non-zero on regression:
//   --gate LABEL            baseline entry label to compare against
//   --gate-file FILE        file holding the baseline (default: --out file)
//   --gate-tolerance PCT    allowed probes_per_sec slowdown (default 2.0)
//   --gate-fingerprint-only skip the throughput check (fingerprint must
//                           still match — used for the timers-on run,
//                           whose throughput is expected to differ)
//
// Trace-capture overhead mode (replaces the stage benchmarks):
//   --trace-overhead        A/B/C the end-to-end engine run: NullObserver
//                           baseline, full-fidelity TraceWriter
//                           (informational — full capture serializes every
//                           probe and is expected to cost real throughput,
//                           especially on single-core hosts where the
//                           writer's pipeline thread cannot overlap), and
//                           a sampled TraceWriter — the supported capture
//                           configuration for hot-path-rate runs, whose
//                           overhead is the gate.  2 passes per arm (pass
//                           2 timed), appends a "mode": "trace_overhead"
//                           entry, FAILs if sampled capture costs more
//                           than the tolerance, any run fingerprint
//                           differs from the baseline's, or record counts
//                           don't reconcile (full: records == probes;
//                           sampled: records + sampled_out == probes)
//   --overhead-tolerance PCT  allowed sampled-capture overhead (default 10.0)
//   --capture-sample-rate R   sampled arm's keep probability (default 0.05)
//   --trace-out FILE        capture target (default /tmp/micro_hotpath.trace)
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "fault/delivery.h"
#include "fault/inject.h"
#include "fault/schedule.h"
#include "net/special_ranges.h"
#include "prng/xoshiro.h"
#include "sim/engine.h"
#include "sim/shard.h"
#include "telescope/telescope.h"
#include "topology/filtering.h"
#include "topology/reachability.h"
#include "trace/format.h"
#include "trace/writer.h"
#include "worms/hitlist.h"

using namespace hotspots;

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The repo's standard FNV-1a output fingerprint (shared with the trace
/// subsystem, which stamps it into capture headers).
using Fingerprint = trace::Fingerprint;

struct StageResult {
  const char* name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  std::uint64_t checksum = 0;

  [[nodiscard]] double OpsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

void PrintStage(const StageResult& stage) {
  std::printf("  %-14s %12" PRIu64 " ops in %7.3fs  → %8.2f M ops/s  "
              "(checksum %016" PRIx64 ")\n",
              stage.name, stage.ops, stage.seconds, stage.OpsPerSec() / 1e6,
              stage.checksum);
}

using bench::ReadFileOrEmpty;

struct GateBaseline {
  double scale = -1.0;
  double probes_per_sec = 0.0;
  std::string fingerprint;
};

/// Finds the most recent entry labelled `label` in the results file and
/// extracts the fields the gate compares.  The scan is textual (the file is
/// our own fixed-key format), anchored at the last occurrence of the label
/// so re-recorded baselines win.
[[nodiscard]] std::optional<GateBaseline> FindGateBaseline(
    const std::string& path, const std::string& label) {
  const std::string contents = ReadFileOrEmpty(path);
  const std::string needle = "\"label\": \"" + label + "\"";
  const std::size_t start = contents.rfind(needle);
  if (start == std::string::npos) return std::nullopt;
  std::size_t end = contents.find("\"label\":", start + needle.size());
  if (end == std::string::npos) end = contents.size();
  const std::string entry = contents.substr(start, end - start);

  const auto number_after = [&](const char* key) -> std::optional<double> {
    const std::size_t pos = entry.find(key);
    if (pos == std::string::npos) return std::nullopt;
    return std::strtod(entry.c_str() + pos + std::strlen(key), nullptr);
  };
  GateBaseline baseline;
  const auto scale = number_after("\"scale\": ");
  const auto rate = number_after("\"probes_per_sec\": ");
  const std::size_t fp = entry.find("\"fingerprint\": \"");
  if (!scale || !rate || fp == std::string::npos) return std::nullopt;
  baseline.scale = *scale;
  baseline.probes_per_sec = *rate;
  const std::size_t fp_start = fp + std::strlen("\"fingerprint\": \"");
  const std::size_t fp_end = entry.find('"', fp_start);
  if (fp_end == std::string::npos) return std::nullopt;
  baseline.fingerprint = entry.substr(fp_start, fp_end - fp_start);
  return baseline;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  std::string trace_out = bench::TraceOutArg(argc, argv);
  const std::string fault_spec = bench::FaultSpecArg(argc, argv);
  // Forces tracing for the whole bench when non-empty; the timeline file
  // itself holds only the spans-on rerun (see the tracing section below).
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  double scale = 1.0;
  std::string label = "run";
  std::string out_path = "results/BENCH_hotpath.json";
  std::string gate_label;
  std::string gate_file;
  double gate_tolerance = 2.0;
  bool gate_fingerprint_only = false;
  int shards = 0;
  bool trace_overhead = false;
  double overhead_tolerance = 10.0;
  double capture_sample_rate = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate_label = argv[++i];
    } else if (std::strcmp(argv[i], "--gate-file") == 0 && i + 1 < argc) {
      gate_file = argv[++i];
    } else if (std::strcmp(argv[i], "--gate-tolerance") == 0 && i + 1 < argc) {
      const auto parsed = bench::ParseDouble(argv[++i]);
      if (!parsed || *parsed < 0.0) {
        std::fprintf(stderr, "--gate-tolerance: non-negative percent "
                     "expected; got \"%s\"\n", argv[i]);
        return 2;
      }
      gate_tolerance = *parsed;
    } else if (std::strcmp(argv[i], "--gate-fingerprint-only") == 0) {
      gate_fingerprint_only = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long parsed = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || parsed < 0 || parsed > 1024) {
        std::fprintf(stderr, "--shards: integer in [0, 1024] expected; "
                     "got \"%s\"\n", argv[i]);
        return 2;
      }
      shards = static_cast<int>(parsed);
    } else if (std::strcmp(argv[i], "--trace-overhead") == 0) {
      trace_overhead = true;
    } else if (std::strcmp(argv[i], "--overhead-tolerance") == 0 &&
               i + 1 < argc) {
      const auto parsed = bench::ParseDouble(argv[++i]);
      if (!parsed || *parsed < 0.0) {
        std::fprintf(stderr, "--overhead-tolerance: non-negative percent "
                     "expected; got \"%s\"\n", argv[i]);
        return 2;
      }
      overhead_tolerance = *parsed;
    } else if (std::strcmp(argv[i], "--capture-sample-rate") == 0 &&
               i + 1 < argc) {
      const auto parsed = bench::ParseDouble(argv[++i]);
      if (!parsed || *parsed <= 0.0 || *parsed > 1.0) {
        std::fprintf(stderr, "--capture-sample-rate: rate in (0,1] "
                     "expected; got \"%s\"\n", argv[i]);
        return 2;
      }
      capture_sample_rate = *parsed;
    } else {
      const auto parsed = bench::ParseDouble(argv[i]);
      if (!parsed || *parsed <= 0.0 || *parsed > 1.0) {
        std::fprintf(stderr,
                     "usage: %s [scale] [--label NAME] [--out FILE] "
                     "[--metrics-out FILE] [--shards N] [--faults SPEC] "
                     "[--gate LABEL [--gate-file FILE] "
                     "[--gate-tolerance PCT] [--gate-fingerprint-only]]\n",
                     argv[0]);
        return 2;
      }
      scale = *parsed;
    }
  }
  if (gate_file.empty()) gate_file = out_path;
  fault::FaultSchedule fault_schedule;
  if (!fault_spec.empty()) {
    if (trace_overhead) {
      std::fprintf(stderr, "--faults is not supported with --trace-overhead "
                   "(the overhead arms assume a fault-free baseline)\n");
      return 2;
    }
    try {
      fault_schedule = fault::ParseFaultSpec(fault_spec);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "--faults: %s\n", error.what());
      return 2;
    }
  }
  bench::Title("micro_hotpath", "per-probe pipeline stage timings");

  // ---- Shared fixture: fig5a-scale population + NAT + sensors + ACLs ----
  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.nat_fraction = 0.15;  // Section 5.3's NAT share.
  config.nat_site_mode = core::NatSiteMode::kSharedSite;
  config.seed = 0xF16B;  // Same population as fig5a/fig5b.
  core::Scenario scenario = builder.BuildClustered(config);

  const auto selection = core::GreedyHitList(scenario, 1000);
  worms::HitListWorm worm{selection.prefixes};

  // One /24 darknet in every populated /16 (the fig5b fleet), with full
  // per-/24 + unique-source tracking — the heaviest realistic observer.
  prng::Xoshiro256 placement_rng{0x5E45u};
  std::vector<net::Prefix> sensor_blocks;
  {
    std::vector<std::uint32_t> used;
    for (const auto& cluster : scenario.slash16_clusters) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::uint32_t s24 =
            (cluster.prefix.first().value() >> 8) | placement_rng.UniformBelow(256);
        if (scenario.occupied_slash24s.count(s24) != 0) continue;
        sensor_blocks.push_back(net::Prefix{net::Ipv4{s24 << 8}, 24});
        break;
      }
    }
  }
  telescope::SensorOptions sensor_options;
  sensor_options.track_unique_sources = true;
  sensor_options.track_per_slash24 = true;
  sensor_options.alert_threshold = 5;
  auto make_telescope = [&] {
    telescope::Telescope scope{sensor_options};
    int id = 0;
    for (const auto& block : sensor_blocks) {
      scope.AddSensor("S" + std::to_string(id++), block);
    }
    scope.Build();
    return scope;
  };

  // Upstream ACLs: two fully covered /16s from the hit-list (the Figure-2
  // "M-block" effect) plus one partially covered /16 (a /22 slice).
  topology::IngressAclSet acls;
  acls.Block(net::Prefix{selection.prefixes[2].first(), 16});
  acls.Block(net::Prefix{selection.prefixes[7].first(), 16});
  acls.Block(net::Prefix{selection.prefixes[11].first(), 22});
  acls.Build();
  const topology::Reachability reachability{nullptr, &scenario.nats, &acls,
                                            0.001};

  const int resolved_shards = sim::ResolveEngineShards(shards);
  std::printf("population: %u public + %u NATted hosts, %zu sensors, "
              "hit-list 1000 /16s (coverage %.2f%%), scale %.2f, "
              "%d shard%s\n",
              scenario.public_hosts, scenario.natted_hosts,
              sensor_blocks.size(), 100.0 * selection.coverage, scale,
              resolved_shards, resolved_shards == 1 ? "" : "s");

  // ---- Trace-capture overhead mode (--trace-overhead) --------------------
  // A/B/C of the identical end-to-end run: NullObserver baseline, a
  // full-fidelity TraceWriter (informational — serializing every probe of
  // a 20M-probe synthetic run costs real throughput by construction), and
  // a sampled TraceWriter, the supported configuration for capturing runs
  // at hot-path rates, which the --overhead-tolerance gate judges.  Two
  // passes per arm (pass 2 timed); every arm's run fingerprint must be
  // bit-identical to the baseline's (observers may not perturb the run),
  // and record counts must reconcile exactly.
  if (trace_overhead) {
    if (trace_out.empty()) trace_out = "/tmp/micro_hotpath.trace";
    bench::Section("trace-capture overhead (NullObserver vs TraceWriter)");

    sim::EngineConfig engine_config;
    engine_config.scan_rate = 10.0;
    engine_config.end_time = 2500.0;
    engine_config.sample_interval = 25.0;
    engine_config.seed = 0xBEEF;
    engine_config.stop_at_infected_fraction = 0.995 * selection.coverage;
    engine_config.max_probes = 20'000'000;
    engine_config.shards = shards;

    struct OverheadRun {
      double seconds = 0.0;
      std::uint64_t probes = 0;
      std::uint64_t fingerprint = 0;
      std::uint64_t records = 0;
      std::uint64_t sampled_out = 0;
      std::uint64_t bytes = 0;
    };
    const auto run_once = [&](trace::TraceWriter* writer) -> OverheadRun {
      sim::Population population = scenario.population;  // Run-owned copy.
      sim::Engine engine{population, worm, reachability, &scenario.nats,
                         engine_config};
      engine.SeedRandomInfections(25);
      sim::NullObserver null_observer;
      sim::ProbeObserver* observer =
          writer != nullptr ? static_cast<sim::ProbeObserver*>(writer)
                            : &null_observer;
      OverheadRun run;
      // Finish() is inside the timed window: a pipelined writer's final
      // drain is part of what capture costs.
      const auto t0 = Clock::now();
      const sim::RunResult result = engine.Run(*observer);
      if (writer != nullptr) writer->Finish();
      const auto t1 = Clock::now();
      if (writer != nullptr) {
        run.records = writer->records_written();
        run.sampled_out = writer->records_sampled_out();
        run.bytes = writer->bytes_written();
      }
      Fingerprint fingerprint;
      for (const auto& point : result.series) {
        fingerprint.MixDouble(point.time);
        fingerprint.Mix(point.infected);
        fingerprint.Mix(point.probes);
      }
      for (const std::uint64_t count : result.delivery_counts) {
        fingerprint.Mix(count);
      }
      fingerprint.Mix(result.total_probes);
      fingerprint.Mix(result.final_infected);
      run.seconds = Seconds(t0, t1);
      run.probes = result.total_probes;
      run.fingerprint = fingerprint.hash;
      return run;
    };
    const auto capture_run = [&](double sample_rate) -> OverheadRun {
      trace::TraceWriterOptions writer_options;
      writer_options.seed = engine_config.seed;
      writer_options.sample_rate = sample_rate;
      trace::TraceWriter writer{trace_out, writer_options};
      return run_once(&writer);
    };
    const auto rate_of = [](const OverheadRun& run) {
      return run.seconds > 0.0
                 ? static_cast<double>(run.probes) / run.seconds
                 : 0.0;
    };

    (void)run_once(nullptr);        // Warm-up pass per arm: page in the
    (void)capture_run(1.0);         // population copy, sensors, and the
    (void)capture_run(capture_sample_rate);  // file cache.
    // Interleave the arms (baseline/full/sampled per cycle) and gate on
    // the best *paired* ratio: within a cycle the arms run back-to-back
    // under the same machine conditions, so the per-cycle ratio cancels
    // frequency scaling and background noise that single sequential
    // passes cannot — and a real regression inflates every cycle's ratio,
    // so the min still catches it.
    struct Cycle {
      OverheadRun baseline, full, sampled;
    };
    std::vector<Cycle> cycles(3);
    for (Cycle& cycle : cycles) {
      cycle.baseline = run_once(nullptr);
      cycle.sampled = capture_run(capture_sample_rate);
      // The full arm goes last in the cycle, and its ~260 MB of dirty
      // pages are flushed before the next cycle starts: otherwise the
      // kernel's writeback steals the (possibly only) core out from
      // under whichever arm runs next and the pairing is meaningless.
      cycle.full = capture_run(1.0);
      ::sync();
    }
    const auto faster = [](const OverheadRun& a, const OverheadRun& b) {
      return a.seconds <= b.seconds ? a : b;
    };
    const auto best_overhead = [&](const OverheadRun Cycle::* arm) {
      double best = 0.0;
      bool first = true;
      for (const Cycle& cycle : cycles) {
        if (cycle.baseline.seconds <= 0.0) continue;
        const double pct =
            100.0 * ((cycle.*arm).seconds / cycle.baseline.seconds - 1.0);
        if (first || pct < best) best = pct;
        first = false;
      }
      return best;
    };
    OverheadRun baseline = cycles[0].baseline;
    OverheadRun full = cycles[0].full;
    OverheadRun sampled = cycles[0].sampled;
    for (std::size_t i = 1; i < cycles.size(); ++i) {
      baseline = faster(baseline, cycles[i].baseline);
      full = faster(full, cycles[i].full);
      sampled = faster(sampled, cycles[i].sampled);
    }

    const double baseline_rate = rate_of(baseline);
    const double full_overhead_pct = best_overhead(&Cycle::full);
    const double sampled_overhead_pct = best_overhead(&Cycle::sampled);
    const auto bytes_per_record = [](const OverheadRun& run) {
      return run.records > 0 ? static_cast<double>(run.bytes) /
                                   static_cast<double>(run.records)
                             : 0.0;
    };
    std::printf("  baseline (NullObserver):    %" PRIu64 " probes in %.3fs "
                "→ %.2f M probes/s\n",
                baseline.probes, baseline.seconds, baseline_rate / 1e6);
    std::printf("  capture (all records):      %" PRIu64 " probes in %.3fs "
                "→ %.2f M probes/s (%" PRIu64 " records, %.2f B/record, "
                "%.2f%% overhead — informational)\n",
                full.probes, full.seconds, rate_of(full) / 1e6, full.records,
                bytes_per_record(full), full_overhead_pct);
    std::printf("  capture (sampled %.3g):     %" PRIu64 " probes in %.3fs "
                "→ %.2f M probes/s (%" PRIu64 " records, %.2f%% overhead)\n",
                capture_sample_rate, sampled.probes, sampled.seconds,
                rate_of(sampled) / 1e6, sampled.records,
                sampled_overhead_pct);
    std::printf("  gate: sampled-capture overhead %.2f%% vs tolerance "
                "%.1f%%, trace -> %s\n",
                sampled_overhead_pct, overhead_tolerance, trace_out.c_str());

    bool ok = true;
    const auto check_arm = [&](const char* arm, const OverheadRun& run) {
      if (run.fingerprint != baseline.fingerprint) {
        std::fprintf(stderr,
                     "trace-overhead: FINGERPRINT MISMATCH — the %s writer "
                     "changed the run (%016" PRIx64 " != %016" PRIx64 ")\n",
                     arm, run.fingerprint, baseline.fingerprint);
        ok = false;
      }
      if (run.records + run.sampled_out != run.probes) {
        std::fprintf(stderr,
                     "trace-overhead: RECORD LOSS (%s) — %" PRIu64
                     " probes emitted but %" PRIu64 " records + %" PRIu64
                     " sampled out\n",
                     arm, run.probes, run.records, run.sampled_out);
        ok = false;
      }
    };
    check_arm("full-fidelity", full);
    check_arm("sampled", sampled);

    char hex[32];
    const auto hex64 = [&](std::uint64_t value) -> const char* {
      std::snprintf(hex, sizeof hex, "%016" PRIx64, value);
      return hex;
    };
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.KV("label", label);
    writer.Key("scale").FixedValue(scale, 4);
    writer.KV("mode", "trace_overhead");
    writer.KV("population", static_cast<std::uint64_t>(
                                scenario.population.size()));
    writer.KV("shards", static_cast<std::uint64_t>(resolved_shards));
    writer.Key("baseline").BeginObject();
    writer.KV("probes", baseline.probes);
    writer.Key("seconds").FixedValue(baseline.seconds, 4);
    writer.Key("probes_per_sec").FixedValue(baseline_rate, 0);
    writer.EndObject();
    const auto capture_json = [&](const char* key, const OverheadRun& run,
                                  double sample_rate, double overhead_pct) {
      writer.Key(key).BeginObject();
      writer.Key("sample_rate").FixedValue(sample_rate, 3);
      writer.KV("probes", run.probes);
      writer.Key("seconds").FixedValue(run.seconds, 4);
      writer.Key("probes_per_sec").FixedValue(rate_of(run), 0);
      writer.KV("records", run.records);
      writer.KV("sampled_out", run.sampled_out);
      writer.KV("bytes", run.bytes);
      writer.Key("bytes_per_record").FixedValue(bytes_per_record(run), 2);
      writer.Key("overhead_pct").FixedValue(overhead_pct, 2);
      writer.EndObject();
    };
    capture_json("capture_full", full, 1.0, full_overhead_pct);
    capture_json("capture_sampled", sampled, capture_sample_rate,
                 sampled_overhead_pct);
    writer.Key("overhead_pct").FixedValue(sampled_overhead_pct, 2);
    writer.Key("tolerance_pct").FixedValue(overhead_tolerance, 1);
    writer.KV("fingerprint", hex64(baseline.fingerprint));
    writer.EndObject();
    bench::AppendJsonEntry(out_path, writer.str(), "micro_hotpath");
    bench::DumpMetrics(metrics_out, "micro_hotpath");

    if (sampled_overhead_pct > overhead_tolerance) {
      std::fprintf(stderr,
                   "trace-overhead: GATE FAIL — %.2f%% sampled-capture "
                   "overhead exceeds the %.1f%% tolerance\n",
                   sampled_overhead_pct, overhead_tolerance);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("trace-overhead: PASS (sampled %.2f%% ≤ %.1f%%, full "
                "%.2f%% informational, fingerprints identical, "
                "%" PRIu64 "/%" PRIu64 " full records)\n",
                sampled_overhead_pct, overhead_tolerance, full_overhead_pct,
                full.records, full.probes);
    return 0;
  }

  std::vector<StageResult> stages;

  // ---- Stage: targeting --------------------------------------------------
  {
    prng::Xoshiro256 rng{42};
    const auto scanner = worm.MakeScanner(scenario.population.host(0), 7);
    constexpr std::uint64_t kOps = 1 << 24;
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      checksum ^= scanner->NextTarget(rng).value() * (i | 1);
    }
    const auto t1 = Clock::now();
    stages.push_back({"targeting", kOps, Seconds(t0, t1), checksum});
    PrintStage(stages.back());
  }

  // ---- Pre-generated probe stream shared by the decide/observe/victim
  // stages: mostly hit-list targets, plus slices of special-range, private,
  // and ACL-covered destinations so every path is exercised.
  std::vector<topology::Probe> probes;
  {
    prng::Xoshiro256 rng{43};
    const auto scanner = worm.MakeScanner(scenario.population.host(0), 9);
    const std::size_t kStream = 1 << 20;
    probes.reserve(kStream);
    const topology::SiteId shared_site =
        scenario.nats.size() > 0 ? 0 : topology::kPublicSite;
    for (std::size_t i = 0; i < kStream; ++i) {
      topology::Probe probe;
      probe.src = net::Ipv4{rng.NextU32() | 0x01000000u};
      probe.src_site = topology::kPublicSite;
      const std::uint32_t roll = rng.UniformBelow(100);
      if (roll < 70) {
        probe.dst = scanner->NextTarget(rng);
      } else if (roll < 80) {
        probe.dst = net::Ipv4{rng.NextU32()};  // Anywhere (special ranges).
      } else if (roll < 90) {
        probe.dst = net::Ipv4{net::kPrivate192.first().value() |
                              (rng.NextU32() & 0xFFFFu)};
        if ((roll & 1) != 0) probe.src_site = shared_site;
      } else {
        probe.dst = net::Ipv4{selection.prefixes[2].first().value() |
                              (rng.NextU32() & 0xFFFFu)};
      }
      probes.push_back(probe);
    }
  }

  // ---- Stage: decide -----------------------------------------------------
  {
    prng::Xoshiro256 rng{44};
    constexpr int kPasses = 16;
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const auto& probe : probes) {
        checksum += static_cast<std::uint64_t>(reachability.Decide(probe, rng));
      }
    }
    const auto t1 = Clock::now();
    stages.push_back({"decide", kPasses * probes.size(), Seconds(t0, t1),
                      checksum});
    PrintStage(stages.back());
  }

  // ---- Stage: observe ----------------------------------------------------
  {
    telescope::Telescope scope = make_telescope();
    prng::Xoshiro256 rng{45};
    // 25% of the stream redirected into sensor blocks so the record path
    // (not just the lookup miss path) is measured.
    std::vector<std::pair<net::Ipv4, net::Ipv4>> stream;
    stream.reserve(probes.size());
    for (const auto& probe : probes) {
      net::Ipv4 dst = probe.dst;
      if (rng.UniformBelow(4) == 0) {
        const auto& block =
            sensor_blocks[rng.UniformBelow(
                static_cast<std::uint32_t>(sensor_blocks.size()))];
        dst = net::Ipv4{block.first().value() | (rng.NextU32() & 0xFFu)};
      }
      stream.emplace_back(probe.src, dst);
    }
    constexpr int kPasses = 8;
    const auto t0 = Clock::now();
    double time = 0.0;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const auto& [src, dst] : stream) {
        scope.Observe(time, src, dst);
        time += 1e-4;
      }
    }
    const auto t1 = Clock::now();
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < scope.size(); ++i) {
      const auto& sensor = scope.sensor(static_cast<int>(i));
      checksum += sensor.probe_count() + 31 * sensor.UniqueSourceCount();
    }
    stages.push_back({"observe", kPasses * stream.size(), Seconds(t0, t1),
                      checksum});
    PrintStage(stages.back());
  }

  // ---- Stage: victim lookup ----------------------------------------------
  {
    constexpr int kPasses = 16;
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const auto& probe : probes) {
        const sim::HostId victim = scenario.population.FindPublic(probe.dst);
        checksum += victim != sim::kInvalidHost ? victim : 1;
      }
    }
    const auto t1 = Clock::now();
    stages.push_back({"victim_lookup", kPasses * probes.size(),
                      Seconds(t0, t1), checksum});
    PrintStage(stages.back());
  }

  // ---- End-to-end: fig5-style outbreak with the sensor fleet attached ----
  bench::Section("end-to-end engine run (hit-list 1000, fleet attached)");
  sim::EngineConfig engine_config;
  engine_config.scan_rate = 10.0;
  engine_config.end_time = 2500.0;
  engine_config.sample_interval = 25.0;
  engine_config.seed = 0xBEEF;
  engine_config.stop_at_infected_fraction = 0.995 * selection.coverage;
  engine_config.max_probes = 20'000'000;
  engine_config.shards = shards;

  struct EndToEndRun {
    std::uint64_t probes = 0;
    std::uint64_t delivered = 0;
    double seconds = 0.0;
    std::uint64_t fingerprint = 0;
    std::size_t alerted = 0;
  };
  // One complete end-to-end run; called twice (timed, then timers-on for
  // the phase breakdown), so faulted state — the hook, the outage windows
  // — is rebuilt identically per run from the parsed schedule.
  const auto run_end_to_end =
      [&](bool publish_sensor_metrics) -> EndToEndRun {
    sim::Population population = scenario.population;  // Run-owned copy.
    telescope::Telescope scope = make_telescope();
    fault::DeliveryFaults faults{fault_schedule};
    if (!fault_spec.empty()) {
      try {
        fault::ApplySensorOutages(fault_schedule, scope);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "--faults: %s\n", error.what());
        std::exit(2);
      }
    }
    sim::Engine engine{population, worm, reachability, &scenario.nats,
                       engine_config};
    if (fault_schedule.HasDeliveryFaults()) engine.SetDeliveryFaults(&faults);
    engine.SeedRandomInfections(25);
    const auto t0 = Clock::now();
    const sim::RunResult result = engine.Run(scope);
    const auto t1 = Clock::now();

    Fingerprint fingerprint;
    for (const auto& point : result.series) {
      fingerprint.MixDouble(point.time);
      fingerprint.Mix(point.infected);
      fingerprint.Mix(point.probes);
    }
    for (const std::uint64_t count : result.delivery_counts) {
      fingerprint.Mix(count);
    }
    fingerprint.Mix(result.total_probes);
    fingerprint.Mix(result.final_infected);
    for (std::size_t i = 0; i < scope.size(); ++i) {
      const auto& sensor = scope.sensor(static_cast<int>(i));
      fingerprint.Mix(sensor.probe_count());
      fingerprint.Mix(sensor.UniqueSourceCount());
      fingerprint.MixDouble(sensor.alert_time().value_or(-1.0));
      for (const auto& row : sensor.Histogram()) {
        if (row.stats.probes == 0) continue;
        fingerprint.Mix(row.slash24);
        fingerprint.Mix(row.stats.probes);
        fingerprint.Mix(row.stats.unique_sources);
      }
    }
    // Export per-sensor gauges (probe totals, rates, alert times) so a
    // --metrics-out sidecar of this bench carries the full fleet state.
    if (publish_sensor_metrics && !metrics_out.empty()) {
      scope.PublishSensorMetrics(result.end_time);
    }
    EndToEndRun run;
    run.probes = result.total_probes;
    run.delivered = result.delivery_counts[0];
    run.seconds = Seconds(t0, t1);
    run.fingerprint = fingerprint.hash;
    run.alerted = scope.AlertedCount();
    return run;
  };

  StageResult end_to_end{"end_to_end", 0, 0.0, 0};
  const EndToEndRun timed = run_end_to_end(/*publish_sensor_metrics=*/true);
  end_to_end.ops = timed.probes;
  end_to_end.seconds = timed.seconds;
  end_to_end.checksum = timed.fingerprint;
  PrintStage(end_to_end);
  std::printf("  delivered %" PRIu64 " / %" PRIu64 " probes, %zu/%zu "
              "sensors alerted, fingerprint %016" PRIx64 "\n",
              timed.delivered, timed.probes, timed.alerted,
              sensor_blocks.size(), timed.fingerprint);

  // ---- Per-phase breakdown: the identical run, timers forced on ---------
  // Phase counters are cumulative process-wide, so the rerun's contribution
  // is the delta around it.  Timers observe, never steer: the rerun must
  // reproduce the timed run's fingerprint bit-for-bit or the entry (and the
  // serial-fraction claim) would describe a different run.
  bench::Section("per-phase breakdown (timers-on rerun)");
  constexpr const char* kPhaseCounters[] = {
      "engine.stage.generate.nanos", "engine.stage.fault.nanos",
      "engine.stage.prefold.nanos", "engine.stage.commit.nanos",
      "engine.run.nanos"};
  constexpr std::size_t kPhaseCount = std::size(kPhaseCounters);
  obs::Registry& registry = obs::Registry::Global();
  std::uint64_t phase_nanos[kPhaseCount];
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_nanos[i] = registry.GetCounter(kPhaseCounters[i]).Value();
  }
  obs::SetStageTimersForTesting(1);
  const EndToEndRun instrumented =
      run_end_to_end(/*publish_sensor_metrics=*/false);
  obs::SetStageTimersForTesting(-1);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_nanos[i] =
        registry.GetCounter(kPhaseCounters[i]).Value() - phase_nanos[i];
  }
  if (instrumented.fingerprint != timed.fingerprint) {
    std::fprintf(stderr,
                 "phases: FINGERPRINT MISMATCH — the timers-on rerun "
                 "diverged from the timed run (%016" PRIx64 " != %016" PRIx64
                 "); stage timers must never steer the simulation\n",
                 instrumented.fingerprint, timed.fingerprint);
    return 1;
  }
  const std::uint64_t run_nanos = phase_nanos[kPhaseCount - 1];
  const double serial_fraction =
      run_nanos > 0
          ? static_cast<double>(phase_nanos[3]) / static_cast<double>(run_nanos)
          : 0.0;
  const char* const phase_names[] = {"generate", "fault", "prefold", "commit",
                                     "run"};
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    std::printf("  %-9s %12.3f ms  (%5.1f%% of run)\n", phase_names[i],
                static_cast<double>(phase_nanos[i]) / 1e6,
                run_nanos > 0 ? 100.0 * static_cast<double>(phase_nanos[i]) /
                                    static_cast<double>(run_nanos)
                              : 0.0);
  }
  std::printf("  serial fraction (commit/run): %.4f\n", serial_fraction);

  // ---- Tracing overhead: the identical run, spans forced on --------------
  // Informational A/B so the cost of observation is itself tracked across
  // PRs (no gate: span cost depends on step count, not probe count).  Spans
  // observe, never steer: the traced rerun must reproduce the timed
  // fingerprint bit-for-bit or the timeline would describe a different run.
  // With --timeline-out the timed run was traced too (the flag forces
  // tracing process-wide), so the A/B below compares on-vs-on and the
  // overhead column reads ~0 — the recorded entries never pass the flag.
  bench::Section("tracing overhead (spans-on rerun, informational)");
  (void)obs::SpanCollector::Global().TakeTimeline();  // Clean span window.
  obs::SetTracingForTesting(1);
  const EndToEndRun traced = run_end_to_end(/*publish_sensor_metrics=*/false);
  obs::SetTracingForTesting(timeline_out.empty() ? -1 : 1);
  const obs::Timeline timeline = obs::SpanCollector::Global().TakeTimeline();
  if (traced.fingerprint != timed.fingerprint) {
    std::fprintf(stderr,
                 "tracing: FINGERPRINT MISMATCH — the spans-on rerun "
                 "diverged from the timed run (%016" PRIx64 " != %016" PRIx64
                 "); spans must never steer the simulation\n",
                 traced.fingerprint, timed.fingerprint);
    return 1;
  }
  const double tracing_overhead_pct =
      timed.seconds > 0.0 ? 100.0 * (traced.seconds / timed.seconds - 1.0)
                          : 0.0;
  std::printf("  %zu spans (%" PRIu64 " dropped), %.4fs traced vs %.4fs "
              "untraced (%+.2f%%)\n",
              timeline.spans.size(), timeline.dropped, traced.seconds,
              timed.seconds, tracing_overhead_pct);
  if (!timeline_out.empty()) {
    if (!obs::WriteTimelineFile(timeline_out, timeline)) return 1;
    std::printf("  timeline sidecar written to %s\n", timeline_out.c_str());
  }

  // ---- JSON entry --------------------------------------------------------
  char hex[32];
  const auto hex64 = [&](std::uint64_t value) -> const char* {
    std::snprintf(hex, sizeof hex, "%016" PRIx64, value);
    return hex;
  };
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.KV("label", label);
  writer.Key("scale").FixedValue(scale, 4);
  writer.KV("population", static_cast<std::uint64_t>(
                              scenario.population.size()));
  writer.KV("sensors", static_cast<std::uint64_t>(sensor_blocks.size()));
  writer.KV("shards", static_cast<std::uint64_t>(resolved_shards));
  writer.KV("obs_timers", obs::StageTimersEnabled());
  writer.KV("faults", fault_spec);
  writer.Key("stages").BeginObject();
  for (const StageResult& stage : stages) {
    writer.Key(stage.name).BeginObject();
    writer.KV("ops", stage.ops);
    writer.Key("seconds").FixedValue(stage.seconds, 4);
    writer.Key("mops_per_sec").FixedValue(stage.OpsPerSec() / 1e6, 3);
    writer.KV("checksum", hex64(stage.checksum));
    writer.EndObject();
  }
  writer.EndObject();
  writer.Key("end_to_end").BeginObject();
  writer.KV("probes", end_to_end.ops);
  writer.Key("seconds").FixedValue(end_to_end.seconds, 4);
  writer.Key("probes_per_sec").FixedValue(end_to_end.OpsPerSec(), 0);
  writer.KV("fingerprint", hex64(timed.fingerprint));
  writer.EndObject();
  // Phase nanos come from the timers-on rerun (fingerprint-checked against
  // the timed run above); end_to_end.seconds stays the timers-off wall.
  writer.Key("phases").BeginObject();
  writer.KV("generate_nanos", phase_nanos[0]);
  writer.KV("fault_nanos", phase_nanos[1]);
  writer.KV("prefold_nanos", phase_nanos[2]);
  writer.KV("commit_nanos", phase_nanos[3]);
  writer.KV("run_nanos", run_nanos);
  writer.Key("serial_fraction").FixedValue(serial_fraction, 4);
  writer.EndObject();
  // Informational spans-on rerun (fingerprint-checked above).  Placed after
  // end_to_end: FindGateBaseline textually takes the entry's *first*
  // probes_per_sec/fingerprint, which must remain the untraced run's.
  writer.Key("tracing").BeginObject();
  writer.Key("seconds").FixedValue(traced.seconds, 4);
  writer.Key("probes_per_sec")
      .FixedValue(traced.seconds > 0.0
                      ? static_cast<double>(traced.probes) / traced.seconds
                      : 0.0,
                  0);
  writer.Key("overhead_pct").FixedValue(tracing_overhead_pct, 2);
  writer.KV("spans", static_cast<std::uint64_t>(timeline.spans.size()));
  writer.KV("dropped", timeline.dropped);
  writer.EndObject();
  writer.EndObject();
  bench::AppendJsonEntry(out_path, writer.str(), "micro_hotpath");

  bench::DumpMetrics(metrics_out, "micro_hotpath");

  // ---- Gate: regression check against a recorded baseline ----------------
  if (!gate_label.empty()) {
    const auto baseline = FindGateBaseline(gate_file, gate_label);
    if (!baseline) {
      std::fprintf(stderr, "gate: no entry labelled \"%s\" in %s\n",
                   gate_label.c_str(), gate_file.c_str());
      return 1;
    }
    if (std::fabs(baseline->scale - scale) > 1e-9) {
      std::fprintf(stderr,
                   "gate: baseline \"%s\" was recorded at scale %.4f but "
                   "this run used %.4f; fingerprints and throughput are "
                   "only comparable at matching scales\n",
                   gate_label.c_str(), baseline->scale, scale);
      return 1;
    }
    bool ok = true;
    if (baseline->fingerprint != hex64(timed.fingerprint)) {
      std::fprintf(stderr,
                   "gate: FINGERPRINT MISMATCH vs \"%s\": %s != %s — the "
                   "simulation output changed\n",
                   gate_label.c_str(), hex64(timed.fingerprint),
                   baseline->fingerprint.c_str());
      ok = false;
    }
    if (!gate_fingerprint_only) {
      const double floor =
          baseline->probes_per_sec * (1.0 - gate_tolerance / 100.0);
      const double delta_pct =
          baseline->probes_per_sec > 0.0
              ? 100.0 * (end_to_end.OpsPerSec() / baseline->probes_per_sec -
                         1.0)
              : 0.0;
      if (end_to_end.OpsPerSec() < floor) {
        std::fprintf(stderr,
                     "gate: THROUGHPUT REGRESSION vs \"%s\": %.0f probes/s "
                     "(%.2f%%) is below the %.1f%% tolerance floor %.0f\n",
                     gate_label.c_str(), end_to_end.OpsPerSec(), delta_pct,
                     gate_tolerance, floor);
        ok = false;
      } else {
        std::printf("gate: throughput %.0f probes/s, %+.2f%% vs \"%s\" "
                    "(tolerance %.1f%%)\n",
                    end_to_end.OpsPerSec(), delta_pct, gate_label.c_str(),
                    gate_tolerance);
      }
    }
    if (!ok) return 1;
    std::printf("gate: PASS vs \"%s\"%s\n", gate_label.c_str(),
                gate_fingerprint_only ? " (fingerprint only)" : "");
  }
  return 0;
}
