// Hot-path microbenchmark: times each stage of the per-probe pipeline —
// targeting (HostScanner::NextTarget), reachability (Reachability::Decide),
// telescope observation (Telescope::Observe), victim lookup
// (Population::FindPublic) — plus the end-to-end engine loop at Figure-5
// scale, and appends a machine-readable entry to results/BENCH_hotpath.json.
//
// The end-to-end run is fully deterministic (fixed seeds) and reports a
// FNV-1a fingerprint over the RunResult series, delivery counts, and every
// sensor's histogram/alert state.  Comparing entries recorded before and
// after a hot-path change therefore checks both speed (probes_per_sec) and
// behaviour (the fingerprints must be bit-identical).
//
// Usage: micro_hotpath [scale] [--label NAME] [--out FILE]
//   scale    population scale in (0,1], default 1.0 (fig5a scale)
//   --label  entry label, e.g. "before" / "after" (default "run")
//   --out    JSON file to append to (default results/BENCH_hotpath.json)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "net/special_ranges.h"
#include "prng/xoshiro.h"
#include "sim/engine.h"
#include "telescope/telescope.h"
#include "topology/filtering.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

using namespace hotspots;

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double Seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// FNV-1a over arbitrary words, used to fingerprint simulation output.
struct Fingerprint {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  void Mix(std::uint64_t word) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (word >> shift) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  }
  void MixDouble(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    Mix(bits);
  }
};

struct StageResult {
  const char* name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  std::uint64_t checksum = 0;

  [[nodiscard]] double OpsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

void PrintStage(const StageResult& stage) {
  std::printf("  %-14s %12" PRIu64 " ops in %7.3fs  → %8.2f M ops/s  "
              "(checksum %016" PRIx64 ")\n",
              stage.name, stage.ops, stage.seconds, stage.OpsPerSec() / 1e6,
              stage.checksum);
}

/// Appends `entry` (a JSON object, no trailing newline) to the JSON array in
/// `path`, creating the file if needed.
void AppendJsonEntry(const std::string& path, const std::string& entry) {
  std::string contents;
  if (FILE* in = std::fopen(path.c_str(), "rb")) {
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(in);
  }
  // Strip everything after the final closing bracket (and the bracket).
  const std::size_t end = contents.rfind(']');
  std::string out;
  if (end == std::string::npos) {
    out = "[\n" + entry + "\n]\n";
  } else {
    out = contents.substr(0, end);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += ",\n" + entry + "\n]\n";
  }
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "micro_hotpath: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
  std::printf("\nappended entry to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::string label = "run";
  std::string out_path = "results/BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      const auto parsed = bench::ParseDouble(argv[i]);
      if (!parsed || *parsed <= 0.0 || *parsed > 1.0) {
        std::fprintf(stderr, "usage: %s [scale] [--label NAME] [--out FILE]\n",
                     argv[0]);
        return 2;
      }
      scale = *parsed;
    }
  }
  bench::Title("micro_hotpath", "per-probe pipeline stage timings");

  // ---- Shared fixture: fig5a-scale population + NAT + sensors + ACLs ----
  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s = std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.nat_fraction = 0.15;  // Section 5.3's NAT share.
  config.nat_site_mode = core::NatSiteMode::kSharedSite;
  config.seed = 0xF16B;  // Same population as fig5a/fig5b.
  core::Scenario scenario = builder.BuildClustered(config);

  const auto selection = core::GreedyHitList(scenario, 1000);
  worms::HitListWorm worm{selection.prefixes};

  // One /24 darknet in every populated /16 (the fig5b fleet), with full
  // per-/24 + unique-source tracking — the heaviest realistic observer.
  prng::Xoshiro256 placement_rng{0x5E45u};
  std::vector<net::Prefix> sensor_blocks;
  {
    std::vector<std::uint32_t> used;
    for (const auto& cluster : scenario.slash16_clusters) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::uint32_t s24 =
            (cluster.prefix.first().value() >> 8) | placement_rng.UniformBelow(256);
        if (scenario.occupied_slash24s.count(s24) != 0) continue;
        sensor_blocks.push_back(net::Prefix{net::Ipv4{s24 << 8}, 24});
        break;
      }
    }
  }
  telescope::SensorOptions sensor_options;
  sensor_options.track_unique_sources = true;
  sensor_options.track_per_slash24 = true;
  sensor_options.alert_threshold = 5;
  auto make_telescope = [&] {
    telescope::Telescope scope{sensor_options};
    int id = 0;
    for (const auto& block : sensor_blocks) {
      scope.AddSensor("S" + std::to_string(id++), block);
    }
    scope.Build();
    return scope;
  };

  // Upstream ACLs: two fully covered /16s from the hit-list (the Figure-2
  // "M-block" effect) plus one partially covered /16 (a /22 slice).
  topology::IngressAclSet acls;
  acls.Block(net::Prefix{selection.prefixes[2].first(), 16});
  acls.Block(net::Prefix{selection.prefixes[7].first(), 16});
  acls.Block(net::Prefix{selection.prefixes[11].first(), 22});
  acls.Build();
  const topology::Reachability reachability{nullptr, &scenario.nats, &acls,
                                            0.001};

  std::printf("population: %u public + %u NATted hosts, %zu sensors, "
              "hit-list 1000 /16s (coverage %.2f%%), scale %.2f\n",
              scenario.public_hosts, scenario.natted_hosts,
              sensor_blocks.size(), 100.0 * selection.coverage, scale);

  std::vector<StageResult> stages;

  // ---- Stage: targeting --------------------------------------------------
  {
    prng::Xoshiro256 rng{42};
    const auto scanner = worm.MakeScanner(scenario.population.host(0), 7);
    constexpr std::uint64_t kOps = 1 << 24;
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      checksum ^= scanner->NextTarget(rng).value() * (i | 1);
    }
    const auto t1 = Clock::now();
    stages.push_back({"targeting", kOps, Seconds(t0, t1), checksum});
    PrintStage(stages.back());
  }

  // ---- Pre-generated probe stream shared by the decide/observe/victim
  // stages: mostly hit-list targets, plus slices of special-range, private,
  // and ACL-covered destinations so every path is exercised.
  std::vector<topology::Probe> probes;
  {
    prng::Xoshiro256 rng{43};
    const auto scanner = worm.MakeScanner(scenario.population.host(0), 9);
    const std::size_t kStream = 1 << 20;
    probes.reserve(kStream);
    const topology::SiteId shared_site =
        scenario.nats.size() > 0 ? 0 : topology::kPublicSite;
    for (std::size_t i = 0; i < kStream; ++i) {
      topology::Probe probe;
      probe.src = net::Ipv4{rng.NextU32() | 0x01000000u};
      probe.src_site = topology::kPublicSite;
      const std::uint32_t roll = rng.UniformBelow(100);
      if (roll < 70) {
        probe.dst = scanner->NextTarget(rng);
      } else if (roll < 80) {
        probe.dst = net::Ipv4{rng.NextU32()};  // Anywhere (special ranges).
      } else if (roll < 90) {
        probe.dst = net::Ipv4{net::kPrivate192.first().value() |
                              (rng.NextU32() & 0xFFFFu)};
        if ((roll & 1) != 0) probe.src_site = shared_site;
      } else {
        probe.dst = net::Ipv4{selection.prefixes[2].first().value() |
                              (rng.NextU32() & 0xFFFFu)};
      }
      probes.push_back(probe);
    }
  }

  // ---- Stage: decide -----------------------------------------------------
  {
    prng::Xoshiro256 rng{44};
    constexpr int kPasses = 16;
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const auto& probe : probes) {
        checksum += static_cast<std::uint64_t>(reachability.Decide(probe, rng));
      }
    }
    const auto t1 = Clock::now();
    stages.push_back({"decide", kPasses * probes.size(), Seconds(t0, t1),
                      checksum});
    PrintStage(stages.back());
  }

  // ---- Stage: observe ----------------------------------------------------
  {
    telescope::Telescope scope = make_telescope();
    prng::Xoshiro256 rng{45};
    // 25% of the stream redirected into sensor blocks so the record path
    // (not just the lookup miss path) is measured.
    std::vector<std::pair<net::Ipv4, net::Ipv4>> stream;
    stream.reserve(probes.size());
    for (const auto& probe : probes) {
      net::Ipv4 dst = probe.dst;
      if (rng.UniformBelow(4) == 0) {
        const auto& block =
            sensor_blocks[rng.UniformBelow(
                static_cast<std::uint32_t>(sensor_blocks.size()))];
        dst = net::Ipv4{block.first().value() | (rng.NextU32() & 0xFFu)};
      }
      stream.emplace_back(probe.src, dst);
    }
    constexpr int kPasses = 8;
    const auto t0 = Clock::now();
    double time = 0.0;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const auto& [src, dst] : stream) {
        scope.Observe(time, src, dst);
        time += 1e-4;
      }
    }
    const auto t1 = Clock::now();
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < scope.size(); ++i) {
      const auto& sensor = scope.sensor(static_cast<int>(i));
      checksum += sensor.probe_count() + 31 * sensor.UniqueSourceCount();
    }
    stages.push_back({"observe", kPasses * stream.size(), Seconds(t0, t1),
                      checksum});
    PrintStage(stages.back());
  }

  // ---- Stage: victim lookup ----------------------------------------------
  {
    constexpr int kPasses = 16;
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const auto& probe : probes) {
        const sim::HostId victim = scenario.population.FindPublic(probe.dst);
        checksum += victim != sim::kInvalidHost ? victim : 1;
      }
    }
    const auto t1 = Clock::now();
    stages.push_back({"victim_lookup", kPasses * probes.size(),
                      Seconds(t0, t1), checksum});
    PrintStage(stages.back());
  }

  // ---- End-to-end: fig5-style outbreak with the sensor fleet attached ----
  bench::Section("end-to-end engine run (hit-list 1000, fleet attached)");
  StageResult end_to_end{"end_to_end", 0, 0.0, 0};
  Fingerprint fingerprint;
  {
    sim::Population population = scenario.population;  // Trial-owned copy.
    telescope::Telescope scope = make_telescope();
    sim::EngineConfig engine_config;
    engine_config.scan_rate = 10.0;
    engine_config.end_time = 2500.0;
    engine_config.sample_interval = 25.0;
    engine_config.seed = 0xBEEF;
    engine_config.stop_at_infected_fraction = 0.995 * selection.coverage;
    engine_config.max_probes = 20'000'000;
    sim::Engine engine{population, worm, reachability, &scenario.nats,
                       engine_config};
    engine.SeedRandomInfections(25);
    const auto t0 = Clock::now();
    const sim::RunResult result = engine.Run(scope);
    const auto t1 = Clock::now();
    end_to_end.ops = result.total_probes;
    end_to_end.seconds = Seconds(t0, t1);

    for (const auto& point : result.series) {
      fingerprint.MixDouble(point.time);
      fingerprint.Mix(point.infected);
      fingerprint.Mix(point.probes);
    }
    for (const std::uint64_t count : result.delivery_counts) {
      fingerprint.Mix(count);
    }
    fingerprint.Mix(result.total_probes);
    fingerprint.Mix(result.final_infected);
    for (std::size_t i = 0; i < scope.size(); ++i) {
      const auto& sensor = scope.sensor(static_cast<int>(i));
      fingerprint.Mix(sensor.probe_count());
      fingerprint.Mix(sensor.UniqueSourceCount());
      fingerprint.MixDouble(sensor.alert_time().value_or(-1.0));
      for (const auto& row : sensor.Histogram()) {
        if (row.stats.probes == 0) continue;
        fingerprint.Mix(row.slash24);
        fingerprint.Mix(row.stats.probes);
        fingerprint.Mix(row.stats.unique_sources);
      }
    }
    end_to_end.checksum = fingerprint.hash;
    PrintStage(end_to_end);
    std::printf("  delivered %" PRIu64 " / %" PRIu64 " probes, %zu/%zu "
                "sensors alerted, fingerprint %016" PRIx64 "\n",
                result.delivery_counts[0], result.total_probes,
                scope.AlertedCount(), scope.size(), fingerprint.hash);
  }

  // ---- JSON entry --------------------------------------------------------
  char buffer[256];
  std::string entry = "  {\n";
  entry += "    \"label\": \"" + label + "\",\n";
  std::snprintf(buffer, sizeof buffer, "    \"scale\": %.4f,\n", scale);
  entry += buffer;
  std::snprintf(buffer, sizeof buffer, "    \"population\": %zu,\n",
                scenario.population.size());
  entry += buffer;
  std::snprintf(buffer, sizeof buffer, "    \"sensors\": %zu,\n",
                sensor_blocks.size());
  entry += buffer;
  entry += "    \"stages\": {\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::snprintf(buffer, sizeof buffer,
                  "      \"%s\": {\"ops\": %" PRIu64 ", \"seconds\": %.4f, "
                  "\"mops_per_sec\": %.3f, \"checksum\": \"%016" PRIx64
                  "\"}%s\n",
                  stages[i].name, stages[i].ops, stages[i].seconds,
                  stages[i].OpsPerSec() / 1e6, stages[i].checksum,
                  i + 1 < stages.size() ? "," : "");
    entry += buffer;
  }
  entry += "    },\n";
  std::snprintf(buffer, sizeof buffer,
                "    \"end_to_end\": {\"probes\": %" PRIu64
                ", \"seconds\": %.4f, \"probes_per_sec\": %.0f, "
                "\"fingerprint\": \"%016" PRIx64 "\"}\n",
                end_to_end.ops, end_to_end.seconds, end_to_end.OpsPerSec(),
                fingerprint.hash);
  entry += buffer;
  entry += "  }";
  AppendJsonEntry(out_path, entry);
  return 0;
}
