// Figure 5(a) — "Infection rate with different hit-list sizes."
//
// The Section-5.2 simulation: CodeRedII's real vulnerable-population
// structure (134,586 hosts clustered into 4,481 non-empty /16s across 47
// /8s — synthesized with the same shape), 25 random seeds, 10 probes/s.
// Four worms, each restricted to a greedy /16 hit-list of 10 / 100 / 1000 /
// 4481 prefixes.  Prints the hit-list coverage (paper: 10.60 %, 50.49 %,
// 91.33 %, 100 %) and the mean infected-fraction time series over
// HOTSPOTS_TRIALS independent outbreaks (parallel across
// HOTSPOTS_THREADS): small lists saturate their slice fastest (high
// vulnerable density); the full list reaches everyone but much more slowly.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "sim/study.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string timeline_out = bench::TimelineOutArg(argc, argv);
  bench::TimeseriesSidecar timeseries{bench::TimeseriesOutArg(argc, argv)};
  const double scale = bench::ScaleArg(argc, argv);
  const int trials = bench::TrialsArg(4);
  bench::Title("Figure 5a", "infection rate vs hit-list size");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts =
      static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s =
      std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.seed = 0xF16B;  // Same population as fig5b for comparability.
  core::Scenario scenario = builder.BuildClustered(config);
  std::printf("vulnerable population: %u hosts, %zu non-empty /16s, %zu "
              "/8s; %d trials per hit-list size\n",
              scenario.public_hosts, scenario.slash16_clusters.size(),
              scenario.slash8_clusters.size(), trials);
  bench::PaperSays("134,586 hosts clustered in 47 /8 networks; hit-list "
                   "coverage 10.60%% / 50.49%% / 91.33%% / 100%%.");

  const int kListSizes[] = {10, 100, 1000,
                            static_cast<int>(scenario.slash16_clusters.size())};
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};

  // Collect all trial runs per list size, then print a merged mean table.
  std::vector<std::vector<sim::RunResult>> runs_by_size;
  std::uint64_t total_probes = 0;
  sim::StudyTelemetry overall;
  for (const int size : kListSizes) {
    const auto selection = core::GreedyHitList(scenario, size);
    worms::HitListWorm worm{selection.prefixes};

    sim::StudyOptions options;
    options.master_seed = 0x5A + static_cast<std::uint64_t>(size);
    options.label = "list-" + std::to_string(size);
    auto study = sim::RunStudy(
        options, trials, [&](int /*trial*/, std::uint64_t seed) {
          // Per-trial copy: the engine mutates host states, so every trial
          // owns its population (the scenario itself stays pristine).
          sim::Population population = scenario.population;
          sim::EngineConfig engine_config;
          engine_config.scan_rate = 10.0;
          engine_config.end_time = 2500.0;
          engine_config.sample_interval = 25.0;
          engine_config.seed = seed;
          // Stop once the covered slice is (almost) fully infected.
          engine_config.stop_at_infected_fraction = 0.995 * selection.coverage;
          sim::Engine engine{population, worm, reachability, nullptr,
                             engine_config};
          engine.SeedRandomInfections(25);
          return engine.Run();
        });

    std::vector<double> final_fraction;
    std::vector<double> end_times;
    for (const sim::RunResult& run : study.trials) {
      total_probes += run.total_probes;
      final_fraction.push_back(run.FinalInfectedFraction());
      end_times.push_back(run.end_time);
    }
    const auto fraction_stats = sim::Summarize(final_fraction);
    const auto end_stats = sim::Summarize(end_times);
    std::printf("  hit-list %4d /16s: coverage %6.2f%%, final infected "
                "%s%% at t=%s s\n",
                size, 100.0 * selection.coverage,
                bench::MeanStd(fraction_stats, "%.2f", 100.0).c_str(),
                bench::MeanStd(end_stats, "%.0f").c_str());

    overall.Merge(study.telemetry);
    runs_by_size.push_back(std::move(study.trials));
  }

  bench::Section(
      "mean infected fraction over time (%% of total vulnerable pop)");
  std::printf("  %-8s", "t(s)");
  for (const int size : kListSizes) std::printf(" list-%-6d", size);
  std::printf("\n");
  std::vector<double> grid;
  for (double t = 0; t <= 2500.0; t += 125.0) grid.push_back(t);
  const double eligible = static_cast<double>(scenario.population.size());
  std::vector<std::vector<double>> means;
  for (const auto& runs : runs_by_size) {
    means.push_back(sim::MeanInfectedAtTimes(runs, grid));
  }
  for (std::size_t row = 0; row < grid.size(); ++row) {
    std::printf("  %-8.0f", grid[row]);
    for (const auto& mean : means) {
      std::printf(" %-10.4f", mean[row] / eligible);
    }
    std::printf("\n");
  }
  bench::PaperSays("the smallest hit-list infects its whole slice quickest "
                   "(higher vulnerable density); larger lists reach more of "
                   "the population but more slowly — the speed/coverage "
                   "trade-off of hit-list scanning.");
  bench::PrintStudyThroughput(overall, total_probes);
  bench::DumpMetrics(metrics_out, "fig5a_hitlist_infection", &overall);
  bench::DumpTimeline(timeline_out);
  return 0;
}
