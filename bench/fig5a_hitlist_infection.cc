// Figure 5(a) — "Infection rate with different hit-list sizes."
//
// The Section-5.2 simulation: CodeRedII's real vulnerable-population
// structure (134,586 hosts clustered into 4,481 non-empty /16s across 47
// /8s — synthesized with the same shape), 25 random seeds, 10 probes/s.
// Four worms, each restricted to a greedy /16 hit-list of 10 / 100 / 1000 /
// 4481 prefixes.  Prints the hit-list coverage (paper: 10.60 %, 50.49 %,
// 91.33 %, 100 %) and the infected-fraction time series: small lists
// saturate their slice fastest (high vulnerable density); the full list
// reaches everyone but much more slowly.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Title("Figure 5a", "infection rate vs hit-list size");

  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts =
      static_cast<std::uint32_t>(134'586 * scale) + 1000;
  config.nonempty_slash16s =
      std::max(200, static_cast<int>(4481 * scale));
  config.slash8_clusters = 47;
  config.seed = 0xF16B;  // Same population as fig5b for comparability.
  core::Scenario scenario = builder.BuildClustered(config);
  std::printf("vulnerable population: %u hosts, %zu non-empty /16s, %zu "
              "/8s\n",
              scenario.public_hosts, scenario.slash16_clusters.size(),
              scenario.slash8_clusters.size());
  bench::PaperSays("134,586 hosts clustered in 47 /8 networks; hit-list "
                   "coverage 10.60%% / 50.49%% / 91.33%% / 100%%.");

  const int kListSizes[] = {10, 100, 1000,
                            static_cast<int>(scenario.slash16_clusters.size())};
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};

  // Collect all series, then print a merged table (time x four columns).
  std::vector<std::vector<sim::SamplePoint>> series;
  std::vector<double> coverages;
  for (const int size : kListSizes) {
    const auto selection = core::GreedyHitList(scenario, size);
    coverages.push_back(selection.coverage);
    worms::HitListWorm worm{selection.prefixes};

    scenario.population.ResetAllToVulnerable();
    sim::EngineConfig engine_config;
    engine_config.scan_rate = 10.0;
    engine_config.end_time = 2500.0;
    engine_config.sample_interval = 25.0;
    engine_config.seed = 0x5A + static_cast<std::uint64_t>(size);
    // Stop once the covered slice is (almost) fully infected.
    engine_config.stop_at_infected_fraction = 0.995 * selection.coverage;
    sim::Engine engine{scenario.population, worm, reachability, nullptr,
                       engine_config};
    engine.SeedRandomInfections(25);
    const sim::RunResult result = engine.Run();
    series.push_back(result.series);
    std::printf("  hit-list %4d /16s: coverage %6.2f%%, final infected "
                "%6.2f%% at t=%.0fs (%llu probes)\n",
                size, 100.0 * selection.coverage,
                100.0 * result.FinalInfectedFraction(), result.end_time,
                static_cast<unsigned long long>(result.total_probes));
  }

  bench::Section("infected fraction over time (%% of total vulnerable pop)");
  std::printf("  %-8s", "t(s)");
  for (const int size : kListSizes) std::printf(" list-%-6d", size);
  std::printf("\n");
  const double eligible = scenario.population.size();
  for (double t = 0; t <= 2500.0; t += 125.0) {
    std::printf("  %-8.0f", t);
    for (const auto& s : series) {
      // Find the last sample at or before t (series may end early).
      double fraction = 0.0;
      for (const auto& point : s) {
        if (point.time > t) break;
        fraction = static_cast<double>(point.infected) / eligible;
      }
      std::printf(" %-10.4f", fraction);
    }
    std::printf("\n");
  }
  bench::PaperSays("the smallest hit-list infects its whole slice quickest "
                   "(higher vulnerable density); larger lists reach more of "
                   "the population but more slowly — the speed/coverage "
                   "trade-off of hit-list scanning.");
  return 0;
}
